(* Benchmark harness.

   With no arguments: regenerate every table and figure of the paper
   (experiments E1-E11 of DESIGN.md) plus the ablations, then run the
   Bechamel micro-benchmarks quantifying the cost of the transformation
   itself (paper §6: the flattening overhead is "negligible").

   With [--experiment NAME]: run one experiment (see DESIGN.md's index:
   fig4 fig6 bounds transforms fig18 table1 table2 fig19 sparc nmax
   ablation-variants ablation-layout ablation-workloads all).

   With [--no-micro]: skip the Bechamel micro-benchmarks.
   With [--csv DIR]: additionally write table1.csv / table2.csv /
   fig18.csv into DIR for external plotting. *)

open Lf_lang

let example_nest_src =
  {|
  DO i = 1, k
    DO j = 1, l(i)
      x(i,j) = i * j
    ENDDO
  ENDDO
|}

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let block = Parser.block_of_string example_nest_src in
  let nbforce_prog = Lf_kernels.Nbforce_src.program () in
  let mol = Lf_md.Workload.sod ~n:512 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let machine = Lf_simd.Machine.decmpp ~p:64 in
  let flatten_opts =
    { Lf_core.Pipeline.default_options with assume_inner_nonempty = true }
  in
  let simd_opts =
    {
      flatten_opts with
      Lf_core.Pipeline.target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt 64 };
    }
  in
  [
    Test.make ~name:"parse-example"
      (Staged.stage (fun () -> Parser.block_of_string example_nest_src));
    Test.make ~name:"normalize+flatten (Fig. 12)"
      (Staged.stage (fun () ->
           let fresh = Lf_core.Fresh.of_block block in
           match Lf_core.Normalize.of_nest ~fresh (List.hd block) with
           | Ok nest ->
               Lf_core.Flatten.flatten ~fresh ~assume_inner_nonempty:true
                 Lf_core.Flatten.DoneTest nest
               |> Result.is_ok
           | Error _ -> false));
    Test.make ~name:"full pipeline: flatten NBFORCE (seq)"
      (Staged.stage (fun () ->
           Lf_core.Pipeline.flatten_program ~opts:flatten_opts nbforce_prog
           |> Result.is_ok));
    Test.make ~name:"full pipeline: flatten+SIMDize NBFORCE"
      (Staged.stage (fun () ->
           Lf_core.Pipeline.flatten_program ~opts:simd_opts nbforce_prog
           |> Result.is_ok));
    Test.make ~name:"safety analysis (dependence test)"
      (Staged.stage (fun () ->
           Lf_analysis.Parallel.check_loop (List.hd block)));
    Test.make ~name:"kernel Lf (N=512, Gran=64, 8A)"
      (Staged.stage (fun () ->
           Lf_kernels.Nbforce.run ~compute_forces:false Lf_kernels.Nbforce.Flat
             machine mol pl ~nmax:512));
    Test.make ~name:"kernel Lu2 (N=512, Gran=64, 8A)"
      (Staged.stage (fun () ->
           Lf_kernels.Nbforce.run ~compute_forces:false Lf_kernels.Nbforce.L2
             machine mol pl ~nmax:512));
    Test.make ~name:"pairlist build (N=512, 8A)"
      (Staged.stage (fun () -> Lf_md.Pairlist.build mol ~cutoff:8.0));
  ]

let run_micro ppf =
  let open Bechamel in
  Fmt.pf ppf "@.=== Micro-benchmarks (Bechamel; ns per run) ===@.@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"lf" ~fmt:"%s %s" (micro_tests ()))
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> Printf.sprintf "%.0f" e
          | _ -> "-"
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, est) -> Fmt.pf ppf "  %-45s %12s ns@." name est) rows

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let ppf = Fmt.stdout in
  let args = Array.to_list Sys.argv in
  let experiment =
    match args with
    | _ :: "--experiment" :: name :: _ -> Some name
    | _ -> None
  in
  let no_micro = List.mem "--no-micro" args in
  let csv_dir =
    let rec find = function
      | "--csv" :: dir :: _ -> Some dir
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  Option.iter
    (fun dir ->
      Lf_report.Experiments.write_csvs ~dir;
      Fmt.pf ppf "wrote table1.csv, table2.csv, fig18.csv to %s@." dir)
    csv_dir;
  (match experiment with
  | Some name -> (
      match List.assoc_opt name Lf_report.Experiments.by_name with
      | Some f -> f ppf
      | None ->
          Fmt.pf ppf "unknown experiment %s; available: %s@." name
            (String.concat ", " (List.map fst Lf_report.Experiments.by_name));
          exit 1)
  | None ->
      Lf_report.Experiments.all ppf;
      if not no_micro then run_micro ppf);
  Fmt.flush ppf ()
