examples/quickstart.mli:
