examples/dusty_deck.ml: Array Ast Env Fmt Interp Lf_core Lf_lang Lf_simd Nd Parser Pretty Values
