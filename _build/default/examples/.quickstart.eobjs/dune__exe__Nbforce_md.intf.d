examples/nbforce_md.mli:
