examples/region_growing.ml: Array Ast Env Float Fmt Interp Lf_core Lf_lang Lf_md Lf_simd Nd Parser Values
