examples/region_growing.mli:
