examples/dusty_deck.mli:
