examples/mandelbrot.mli:
