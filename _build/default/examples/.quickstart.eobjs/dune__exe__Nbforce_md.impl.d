examples/nbforce_md.ml: Array Fmt Lf_core Lf_kernels Lf_lang Lf_md Lf_simd List
