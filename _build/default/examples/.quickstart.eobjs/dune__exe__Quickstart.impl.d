examples/quickstart.ml: Ast Env Fmt Interp Lf_analysis Lf_core Lf_kernels Lf_lang Lf_simd List Nd Parser Pretty Values
