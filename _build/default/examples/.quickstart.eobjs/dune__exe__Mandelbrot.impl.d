examples/mandelbrot.ml: Array Ast Env Fmt Interp Lf_core Lf_lang Lf_md Lf_simd Nd Parser Pretty Values
