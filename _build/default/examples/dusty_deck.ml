(* A "dusty deck": classic fixed-form F77 with GOTO loops (the paper's §2
   explicitly targets such programs).

   Run with:  dune exec examples/dusty_deck.exe

   The pipeline restructures the GOTO loops into WHILEs
   (Lf_analysis.Loop_info), proves the outer loop parallelizable through
   its induction variable, flattens, SIMDizes, and runs the result on the
   simulated machine — no FORALL annotations or trust flags needed. *)

open Lf_lang

(* a histogram-flavored kernel: per row, accumulate a variable-length
   prefix of a table into the row's bucket *)
let source =
  {|
PROGRAM dusty
C     CLASSIC GOTO LOOPS, COLUMN-1 COMMENTS, DOTTED OPERATORS
      INTEGER k, bucket(k), len(k), tab(k, 8)
      i = 1
10    CONTINUE
      IF (i .GT. k) GOTO 40
      j = 1
20    CONTINUE
      IF (j .GT. len(i)) GOTO 30
      bucket(i) = bucket(i) + tab(i, j)
      j = j + 1
      GOTO 20
30    CONTINUE
      i = i + 1
      GOTO 10
40    CONTINUE
END
|}

let k = 8
let lens = [| 3; 1; 5; 2; 1; 4; 2; 6 |]

let bind set =
  set "k" (Values.VInt k);
  set "len" (Values.VArr (Values.AInt (Nd.of_array lens)));
  set "tab"
    (Values.VArr
       (Values.AInt (Nd.init [| k; 8 |] (fun ix -> (10 * ix.(0)) + ix.(1)))));
  set "bucket" (Values.VArr (Values.AInt (Nd.create [| k |] 0)))

let read_buckets find =
  match find "bucket" with
  | Values.VArr (Values.AInt a) -> Nd.to_array a
  | _ -> failwith "bucket missing"

let () =
  let prog = Parser.program_of_string source in
  Fmt.pr "=== the dusty deck ===@.%s@." (Pretty.program_to_string prog);

  (* sequential reference *)
  let ctx = Interp.run ~setup:(fun c -> bind (Env.set c.Interp.env)) prog in
  let reference = read_buckets (Env.find ctx.Interp.env) in

  (* the compiler sees through the GOTOs *)
  let p_lanes = 4 in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p_lanes };
    }
  in
  match Lf_core.Pipeline.flatten_program ~opts prog with
  | Error e -> failwith e
  | Ok o ->
      Fmt.pr
        "safety: proved parallelizable through the GOTO loops' induction \
         variables (no annotations)@.";
      Fmt.pr "variant: %s@.@."
        (Lf_core.Flatten.variant_to_string o.Lf_core.Pipeline.variant_used);
      Fmt.pr "=== flattened + SIMDized ===@.%s@."
        (Pretty.program_to_string o.Lf_core.Pipeline.program);
      let vm =
        Lf_simd.Vm.run ~p:p_lanes
          ~setup:(fun vm ->
            Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p_lanes);
            bind (fun name v ->
                match v with
                | Values.VArr a -> Lf_simd.Vm.bind_global vm name a
                | v -> Lf_simd.Vm.bind_scalar vm name v))
          o.Lf_core.Pipeline.program
      in
      let got =
        read_buckets (fun n -> Values.VArr (Lf_simd.Vm.read_global vm n))
      in
      Fmt.pr "buckets agree with the sequential deck: %b@." (got = reference);
      Fmt.pr "%a@." Lf_simd.Metrics.pp vm.Lf_simd.Vm.metrics
