(* Mandelbrot escape times on a SIMD machine.

   Run with:  dune exec examples/mandelbrot.exe

   The paper's §7 points to Tomboulian & Pappas, who sped up Mandelbrot on
   SIMD machines by replacing direct with indirect addressing — which the
   paper identifies as a special case of loop flattening.  The kernel is a
   parallel loop over pixels whose inner escape loop has wildly varying
   trip counts: ideal flattening territory.

   The nest also exercises the *general* flattening variant (Figure 10):
   the inner loop is preceded by real work (z = 0, it = 0) and followed by
   a store (iters(p) = it), so the Figure 11/12 preconditions fail and the
   compiler must fall back to the conservative form. *)

open Lf_lang

let source =
  {|
PROGRAM mandelbrot
  INTEGER n, maxiter, iters(n)
  REAL cx(n), cy(n)
  DO px = 1, n
    zx = 0.0
    zy = 0.0
    it = 0
    WHILE (zx * zx + zy * zy <= 4.0 .AND. it < maxiter)
      tmp = zx * zx - zy * zy + cx(px)
      zy = 2.0 * zx * zy + cy(px)
      zx = tmp
      it = it + 1
    ENDWHILE
    iters(px) = it
  ENDDO
END
|}

let n = 64
let maxiter = 64

(* random sample points over the interesting rectangle: escape times are
   heavy-tailed and uncorrelated between neighbouring indices, so each
   lockstep batch of P pixels is dominated by its slowest member *)
let cs =
  let rng = Lf_md.Rng.create 42 in
  Array.init n (fun _ ->
      ( Lf_md.Rng.range rng (-2.2) 0.6,
        Lf_md.Rng.range rng (-1.2) 1.2 ))

let bind set =
  set "n" (Values.VInt n);
  set "maxiter" (Values.VInt maxiter);
  set "cx" (Values.VArr (Values.AReal (Nd.of_array (Array.map fst cs))));
  set "cy" (Values.VArr (Values.AReal (Nd.of_array (Array.map snd cs))));
  set "iters" (Values.VArr (Values.AInt (Nd.create [| n |] 0)))

let read_iters find =
  match find "iters" with
  | Values.VArr (Values.AInt a) -> Nd.to_array a
  | _ -> failwith "iters missing"

let () =
  let prog = Parser.program_of_string source in

  (* sequential reference *)
  let ctx = Interp.run ~setup:(fun c -> bind (Env.set c.Interp.env)) prog in
  let reference = read_iters (Env.find ctx.Interp.env) in
  Fmt.pr "escape times: min %d, max %d@."
    (Array.fold_left min max_int reference)
    (Array.fold_left max 0 reference);

  (* flatten: the pre/post work forces the general variant *)
  let p_lanes = 8 in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p_lanes };
    }
  in
  let flat =
    match Lf_core.Pipeline.flatten_program ~opts prog with
    | Ok o -> o
    | Error e -> failwith e
  in
  Fmt.pr "variant chosen: %s@.@."
    (Lf_core.Flatten.variant_to_string flat.Lf_core.Pipeline.variant_used);
  Fmt.pr "=== flattened SIMD escape-time kernel ===@.%s@."
    (Pretty.program_to_string flat.Lf_core.Pipeline.program);

  let run_simd label prog =
    let vm =
      Lf_simd.Vm.run ~p:p_lanes
        ~setup:(fun vm ->
          Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p_lanes);
          bind (fun name v ->
              match v with
              | Values.VArr a -> Lf_simd.Vm.bind_global vm name a
              | v -> Lf_simd.Vm.bind_scalar vm name v))
        prog
    in
    let got =
      match Lf_simd.Vm.read_global vm "iters" with
      | Values.AInt a -> Nd.to_array a
      | _ -> failwith "iters missing"
    in
    Fmt.pr "%-16s correct=%b  %a@." label (got = reference)
      Lf_simd.Metrics.pp vm.Lf_simd.Vm.metrics;
    vm.Lf_simd.Vm.metrics
  in
  let naive =
    match Lf_core.Pipeline.simdize_program_naive ~opts prog with
    | Ok o -> o
    | Error e -> failwith e
  in
  let m_naive = run_simd "naive SIMD:" naive.Lf_core.Pipeline.program in
  let m_flat = run_simd "flattened SIMD:" flat.Lf_core.Pipeline.program in
  Fmt.pr
    "@.raw vector instructions on %d lanes: naive %d, flattened %d.@.The \
     flattened loop spends ~2x more instructions on control per escape \
     step; it wins when the body dominates (the paper's force routine), \
     and the escape-step counts below show the schedule-level gain:@."
    p_lanes m_naive.Lf_simd.Metrics.steps m_flat.Lf_simd.Metrics.steps;

  (* the analytic bounds for this workload *)
  let pad = (p_lanes - (n mod p_lanes)) mod p_lanes in
  let trips =
    Lf_core.Bounds.distribute ~p:p_lanes `Cyclic
      (Array.append reference (Array.make pad 0))
  in
  Fmt.pr "escape-step bounds: MIMD/flattened %d (Eq. 1), unflattened SIMD %d \
          (Eq. 2)@."
    (Lf_core.Bounds.time_mimd trips)
    (Lf_core.Bounds.time_simd trips)
