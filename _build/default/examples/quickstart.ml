(* Quickstart: flatten the paper's EXAMPLE loop nest and watch it run.

   Run with:  dune exec examples/quickstart.exe

   This walks the whole public API surface once:
   1. parse a pseudo-Fortran program;
   2. check safety (outer-loop parallelizability);
   3. flatten it (Figure 12) and SIMDize it (Figure 7);
   4. run original and transformed versions on the sequential interpreter
      and on the simulated SIMD machine, comparing results and costs. *)

open Lf_lang

let source =
  {|
PROGRAM example
  INTEGER k, x(8,4), l(8)
  DO i = 1, k
    DO j = 1, l(i)
      x(i,j) = i * j
    ENDDO
  ENDDO
END
|}

let k = 8
let l_data = [| 4; 1; 2; 1; 1; 3; 1; 3 |]

let bind_data set =
  set "k" (Values.VInt k);
  set "l" (Values.VArr (Values.AInt (Nd.of_array l_data)));
  set "x" (Values.VArr (Values.AInt (Nd.create [| 8; 4 |] 0)))

let () =
  let prog = Parser.program_of_string source in
  Fmt.pr "=== original program (paper Figure 1) ===@.%s@."
    (Pretty.program_to_string prog);

  (* 1. safety: is the outer loop parallelizable? *)
  let loop = List.hd prog.Ast.p_body in
  let safety = Lf_analysis.Parallel.check_loop loop in
  Fmt.pr "outer loop parallelizable: %b@.@."
    safety.Lf_analysis.Parallel.parallel;

  (* 2. flatten for a sequential target *)
  let opts =
    { Lf_core.Pipeline.default_options with assume_inner_nonempty = true }
  in
  let flat =
    match Lf_core.Pipeline.flatten_program ~opts prog with
    | Ok o -> o
    | Error e -> failwith e
  in
  Fmt.pr "=== flattened (%s) ===@.%s@."
    (Lf_core.Flatten.variant_to_string flat.Lf_core.Pipeline.variant_used)
    (Pretty.program_to_string flat.Lf_core.Pipeline.program);

  (* 3. both versions compute the same x *)
  let run p =
    let ctx =
      Interp.run ~setup:(fun ctx -> bind_data (Env.set ctx.Interp.env)) p
    in
    Env.find ctx.Interp.env "x"
  in
  Fmt.pr "sequential results agree: %b@.@."
    (Values.equal_value (run prog) (run flat.Lf_core.Pipeline.program));

  (* 4. SIMDize both ways and run on the 2-lane simulated machine *)
  let simd_opts =
    {
      opts with
      Lf_core.Pipeline.target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Block; p = Ast.EInt 2 };
    }
  in
  let run_simd label o =
    let vm =
      Lf_simd.Vm.run ~p:2
        ~setup:(fun vm ->
          Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 2);
          bind_data (fun name v ->
              match v with
              | Values.VArr a -> Lf_simd.Vm.bind_global vm name a
              | v -> Lf_simd.Vm.bind_scalar vm name v))
        o.Lf_core.Pipeline.program
    in
    Fmt.pr "%-16s %a@." label Lf_simd.Metrics.pp vm.Lf_simd.Vm.metrics;
    vm
  in
  (match
     ( Lf_core.Pipeline.simdize_program_naive ~opts:simd_opts prog,
       Lf_core.Pipeline.flatten_program ~opts:simd_opts prog )
   with
  | Ok naive, Ok flat_simd ->
      Fmt.pr "=== flattened SIMD version (paper Figure 7) ===@.%s@."
        (Pretty.program_to_string flat_simd.Lf_core.Pipeline.program);
      let _ = run_simd "naive SIMD:" naive in
      let _ = run_simd "flattened SIMD:" flat_simd in
      ()
  | Error e, _ | _, Error e -> failwith e);

  (* 5. the paper's trace tables *)
  Fmt.pr "@.%a@." Lf_kernels.Example_kernel.pp
    (Lf_kernels.Example_kernel.paper_simd ());
  Fmt.pr "%a@." Lf_kernels.Example_kernel.pp
    (Lf_kernels.Example_kernel.paper_flattened ())
