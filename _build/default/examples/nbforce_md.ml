(* Molecular dynamics scenario: the paper's own case study (§5).

   Run with:  dune exec examples/nbforce_md.exe

   Builds the synthetic SOD workload, pushes the NBFORCE kernel through the
   compiler pipeline (Figure 13 -> Figure 15), executes it on the simulated
   DECmpp and CM-2, and reports the flattening speedups next to the
   analytic bound pCnt_max / pCnt_avg. *)

let () =
  let mol = Lf_md.Workload.sod ~n:2048 () in
  Fmt.pr "workload: %s@." mol.Lf_md.Molecule.name;
  let cutoff = 8.0 in
  let pl = Lf_md.Workload.pairlist mol ~cutoff in
  let stats = Lf_md.Stats.of_pairlist pl in
  Fmt.pr "%a@.@." Lf_md.Stats.pp stats;

  (* 1. compiler path: flatten + SIMDize the Fortran kernel, then execute
     on the SIMD VM with 32 lanes against the real pairlist *)
  let p_lanes = 32 in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      pure_subroutines = [ "onef" ];
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Lf_lang.Ast.EInt p_lanes };
    }
  in
  let prog = Lf_kernels.Nbforce_src.program_call () in
  (match
     ( Lf_core.Pipeline.simdize_program_naive ~opts prog,
       Lf_core.Pipeline.flatten_program ~opts prog )
   with
  | Ok naive, Ok flat ->
      Fmt.pr "=== flattened SIMD NBFORCE (paper Figure 15) ===@.%s@."
        (Lf_lang.Pretty.program_to_string flat.Lf_core.Pipeline.program);
      let _, m_naive =
        Lf_kernels.Nbforce_src.run_simd_call naive.Lf_core.Pipeline.program
          mol pl ~p:p_lanes
      in
      let _, m_flat =
        Lf_kernels.Nbforce_src.run_simd_call flat.Lf_core.Pipeline.program
          mol pl ~p:p_lanes
      in
      let c_naive = Lf_simd.Metrics.call_count m_naive "onef" in
      let c_flat = Lf_simd.Metrics.call_count m_flat "onef" in
      Fmt.pr
        "force-routine vector calls on %d lanes: naive %d, flattened %d \
         (speedup x%.2f; bound x%.2f)@.@."
        p_lanes c_naive c_flat
        (float_of_int c_naive /. float_of_int c_flat)
        stats.Lf_md.Stats.ratio
  | Error e, _ | _, Error e -> failwith e);

  (* 2. machine-scale simulation: the three loop versions on both SIMD
     machines with the calibrated cost models *)
  Fmt.pr "machine-scale kernel simulation (N=%d, %.0f A):@."
    (Lf_md.Molecule.n_atoms mol) cutoff;
  List.iter
    (fun m ->
      let t v =
        (Lf_kernels.Nbforce.run ~compute_forces:false v m mol pl ~nmax:8192)
          .Lf_kernels.Nbforce.time
      in
      Fmt.pr "  %-28s Lu1 %6.2f s   Lu2 %6.2f s   Lf %6.2f s@."
        (Fmt.str "%a" Lf_simd.Machine.pp m)
        (t Lf_kernels.Nbforce.L1) (t Lf_kernels.Nbforce.L2)
        (t Lf_kernels.Nbforce.Flat))
    [ Lf_simd.Machine.cm2 ~p:8192; Lf_simd.Machine.decmpp ~p:1024 ];

  (* 3. the MIMD reference: a perfect asynchronous machine needs exactly
     max_p (sum of its pair counts) force calls (Eq. 1) *)
  let trips =
    Lf_core.Bounds.distribute ~p:32 `Cyclic
      (Array.map (max 1) pl.Lf_md.Pairlist.pcnt)
  in
  Fmt.pr "@.MIMD bound on 32 processors (Eq. 1): %d force calls@."
    (Lf_core.Bounds.time_mimd trips);
  Fmt.pr "unflattened SIMD bound (Eq. 2):        %d force calls@."
    (Lf_core.Bounds.time_simd trips)
