(* Region-based image processing on a SIMD machine.

   Run with:  dune exec examples/region_growing.exe

   The paper's introduction quotes the Massively Parallel Processor case
   study of Willebeek-LeMair & Reeves: "the complexity of each iteration in
   the SIMD environment is dominated by the largest region in the image."
   This example reproduces that situation: an image is segmented into
   regions of wildly varying sizes; a per-region statistics pass (one outer
   iteration per region, one inner iteration per member pixel) wastes most
   lanes on the naive SIMD schedule and recovers them after flattening. *)

open Lf_lang

(* the per-pixel work is a subroutine (like the paper's OneF), so the
   number of executions of the CALL statement is directly comparable
   across loop versions -- one vector step per execution on the VM *)
let source =
  {|
PROGRAM regionstats
  INTEGER nregions, maxsz
  INTEGER rsize(nregions), rstart(nregions)
  REAL pixels(npix), rsum(nregions)
  DO r = 1, nregions
    DO k = 1, rsize(r)
      CALL visit(r, rstart(r) + k - 1)
    ENDDO
  ENDDO
END
|}

(* visit(r, idx): rsum(r) = rsum(r) + pixels(idx) *)
let visit_seq : Lf_lang.Interp.proc =
 fun ctx args ->
  match args with
  | [ r; idx ] ->
      let r = Values.as_int r and idx = Values.as_int idx in
      (match
         ( Env.find ctx.Interp.env "rsum",
           Env.find ctx.Interp.env "pixels" )
       with
      | Values.VArr (Values.AReal rsum), Values.VArr (Values.AReal px) ->
          Nd.set rsum [| r |] (Nd.get rsum [| r |] +. Nd.get px [| idx |])
      | _ -> failwith "bad arrays")
  | _ -> failwith "visit arity"

let visit_simd : Lf_simd.Vm.proc =
 fun vm ~mask args ->
  match args with
  | [ r; idx ] ->
      (match
         (Lf_simd.Vm.read_global vm "rsum", Lf_simd.Vm.read_global vm "pixels")
       with
      | Values.AReal rsum, Values.AReal px ->
          Array.iteri
            (fun lane active ->
              if active then begin
                let r = Values.as_int (Lf_simd.Pval.lane r lane) in
                let i = Values.as_int (Lf_simd.Pval.lane idx lane) in
                Nd.set rsum [| r |] (Nd.get rsum [| r |] +. Nd.get px [| i |])
              end)
            mask
      | _ -> failwith "bad arrays")
  | _ -> failwith "visit arity" 

(* synthesize a segmentation: region sizes follow a power-law-ish
   distribution, like connected components of a natural image *)
let nregions = 48

let sizes =
  let rng = Lf_md.Rng.create 2024 in
  Array.init nregions (fun _ ->
      let u = Lf_md.Rng.float rng in
      1 + int_of_float (99.0 *. (u ** 4.0)))

let starts =
  let s = Array.make nregions 1 in
  for i = 1 to nregions - 1 do
    s.(i) <- s.(i - 1) + sizes.(i - 1)
  done;
  s

let npix = starts.(nregions - 1) + sizes.(nregions - 1) - 1

let pixels =
  let rng = Lf_md.Rng.create 7 in
  Array.init npix (fun _ -> Lf_md.Rng.float rng)

let bind set =
  set "nregions" (Values.VInt nregions);
  set "maxsz" (Values.VInt (Array.fold_left max 1 sizes));
  set "npix" (Values.VInt npix);
  set "rsize" (Values.VArr (Values.AInt (Nd.of_array sizes)));
  set "rstart" (Values.VArr (Values.AInt (Nd.of_array starts)));
  set "pixels" (Values.VArr (Values.AReal (Nd.of_array pixels)));
  set "rsum" (Values.VArr (Values.AReal (Nd.create [| nregions |] 0.0)))

let read_sums find =
  match find "rsum" with
  | Values.VArr (Values.AReal a) -> Nd.to_array a
  | _ -> failwith "rsum missing"

let close a b = Float.abs (a -. b) < 1e-9 *. (1.0 +. Float.abs b)

let () =
  Fmt.pr "image: %d pixels in %d regions (sizes %d .. %d)@." npix nregions
    (Array.fold_left min max_int sizes)
    (Array.fold_left max 0 sizes);

  let prog = Parser.program_of_string source in
  let ctx =
    Interp.run
      ~setup:(fun c ->
        Interp.register_proc c "visit" visit_seq;
        bind (Env.set c.Interp.env))
      prog
  in
  let reference = read_sums (Env.find ctx.Interp.env) in

  let p_lanes = 16 in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      pure_subroutines = [ "visit" ];
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p_lanes };
    }
  in
  let run_simd label prog =
    let vm =
      Lf_simd.Vm.run ~p:p_lanes
        ~setup:(fun vm ->
          Lf_simd.Vm.register_proc vm "visit" visit_simd;
          Lf_simd.Vm.bind_scalar vm "p" (Values.VInt p_lanes);
          bind (fun name v ->
              match v with
              | Values.VArr a -> Lf_simd.Vm.bind_global vm name a
              | v -> Lf_simd.Vm.bind_scalar vm name v))
        prog
    in
    let got = read_sums (fun n -> Values.VArr (Lf_simd.Vm.read_global vm n)) in
    Fmt.pr "%-16s correct=%b  pixel-visit vector steps=%d  utilization=%.3f@."
      label
      (Array.for_all2 close got reference)
      (Lf_simd.Metrics.call_count vm.Lf_simd.Vm.metrics "visit")
      (Lf_simd.Metrics.utilization vm.Lf_simd.Vm.metrics);
    vm.Lf_simd.Vm.metrics
  in
  (match
     ( Lf_core.Pipeline.simdize_program_naive ~opts prog,
       Lf_core.Pipeline.flatten_program ~opts prog )
   with
  | Ok naive, Ok flat ->
      Fmt.pr "flattening variant: %s@."
        (Lf_core.Flatten.variant_to_string flat.Lf_core.Pipeline.variant_used);
      let m_naive = run_simd "naive SIMD:" naive.Lf_core.Pipeline.program in
      let m_flat = run_simd "flattened SIMD:" flat.Lf_core.Pipeline.program in
      let calls m = Lf_simd.Metrics.call_count m "visit" in
      Fmt.pr "pixel-visit speedup on %d lanes: x%.2f@.@." p_lanes
        (float_of_int (calls m_naive) /. float_of_int (calls m_flat))
  | Error e, _ | _, Error e -> failwith e);

  (* how the bound scales with the region-size skew *)
  let pad = (p_lanes - (nregions mod p_lanes)) mod p_lanes in
  let trips =
    Lf_core.Bounds.distribute ~p:p_lanes `Cyclic
      (Array.append sizes (Array.make pad 0))
  in
  Fmt.pr "pixel-visit bounds: MIMD/flattened %d (Eq. 1), unflattened SIMD %d \
          (Eq. 2) — the naive schedule is dominated by the largest region@."
    (Lf_core.Bounds.time_mimd trips)
    (Lf_core.Bounds.time_simd trips)
