(** Flattening tests — the heart of the reproduction.

    Golden structure against the paper's Figures 10–12, precondition
    checking, and the semantic-preservation property over random nests
    (the paper's claim that flattening "still executes exactly the same
    instructions in the same order and the same number of times"). *)

open Helpers
open Lf_lang
open Ast
module F = Lf_core.Flatten
module N = Lf_core.Normalize

let flatten variant ?(nonempty = true) nest =
  let fresh = Lf_core.Fresh.of_names [ "i"; "j"; "k"; "l"; "x" ] in
  F.flatten ~fresh ~assume_inner_nonempty:nonempty variant nest

let t_fig12_golden () =
  (* Figure 12 for EXAMPLE, exactly *)
  let expected =
    parse_block
      {|
  i = 1
  j = 1
  WHILE (i <= k)
    x(i, j) = i * j
    IF (j == l(i)) THEN
      i = i + 1
      j = 1
    ELSE
      j = j + 1
    ENDIF
  ENDWHILE
|}
  in
  match flatten F.DoneTest (example_nest ()) with
  | Ok b -> checkb "matches Figure 12" (Ast.equal_block expected b)
  | Error r -> Alcotest.failf "%a" F.pp_rejection r

let t_fig11_golden () =
  let expected =
    parse_block
      {|
  i = 1
  j = 1
  WHILE (i <= k)
    x(i, j) = i * j
    j = j + 1
    IF (.NOT. j <= l(i)) THEN
      i = i + 1
      j = 1
    ENDIF
  ENDWHILE
|}
  in
  match flatten F.Optimized (example_nest ()) with
  | Ok b -> checkb "matches Figure 11" (Ast.equal_block expected b)
  | Error r -> Alcotest.failf "%a" F.pp_rejection r

let t_fig10_structure () =
  (* the general variant: BODY appears exactly once, guarded by t1, and
     the inner while advances the outer control *)
  match flatten F.General (example_nest ()) with
  | Error r -> Alcotest.failf "%a" F.pp_rejection r
  | Ok b -> (
      checkb "guards introduced"
        (List.exists
           (function SAssign ({ lv_name = "t1"; _ }, _) -> true | _ -> false)
           b);
      match List.rev b with
      | SWhile (EVar "t1", outer_body) :: _ ->
          checkb "inner advance loop present"
            (List.exists
               (function
                 | SWhile (EBin (And, EVar "t1", EUn (Not, EVar "t2")), _) ->
                     true
                 | _ -> false)
               outer_body)
      | _ -> Alcotest.fail "outer WHILE t1 missing")

let t_guards_fig9 () =
  let nest = example_nest () in
  let fresh = Lf_core.Fresh.of_names [ "i"; "j"; "k"; "l"; "x" ] in
  let b, t1, t2 = F.with_guards ~fresh nest in
  checks "t1 name" "t1" t1;
  checks "t2 name" "t2" t2;
  (* Figure 9 does not change control flow *)
  let c1 = Interp.run_block ~setup:(fun ctx -> example_setup ctx) (example_block ()) in
  let c2 = Interp.run_block ~setup:(fun ctx -> example_setup ctx) b in
  checkb "guarded form equivalent"
    (Env.equal_on [ "x" ] c1.Interp.env c2.Interp.env)

let t_all_variants_equivalent () =
  let reference = example_x () in
  List.iter
    (fun variant ->
      match flatten variant (example_nest ()) with
      | Error r -> Alcotest.failf "%a" F.pp_rejection r
      | Ok b ->
          let ctx = Interp.run_block ~setup:(fun ctx -> example_setup ctx) b in
          check int_nd
            (F.variant_to_string variant)
            reference (get_x ctx))
    [ F.General; F.Optimized; F.DoneTest ]

let t_preconditions () =
  (* zero-trip inner loops: only the general variant is applicable *)
  let nest = example_nest () in
  (match flatten ~nonempty:false F.Optimized nest with
  | Error { F.rej_reason; _ } ->
      checkb "mentions condition 2"
        (Astring_contains.contains rej_reason "condition 2")
  | Ok _ -> Alcotest.fail "Optimized must require nonempty inner");
  checkb "general always applies"
    (Result.is_ok (flatten ~nonempty:false F.General nest));
  (* impure tests block the optimized variants *)
  let b =
    parse_block
      "DO i = 1, k\n  DO j = 1, l(rand(i))\n    x(i,j) = 1\n  ENDDO\nENDDO"
  in
  let fresh = Lf_core.Fresh.of_block b in
  let nest2 = Result.get_ok (N.of_nest ~fresh (List.hd b)) in
  let purity = Lf_analysis.Side_effects.env ~impure_funcs:[ "rand" ] () in
  (match
     F.flatten ~fresh ~purity ~assume_inner_nonempty:true F.DoneTest nest2
   with
  | Error { F.rej_reason; _ } ->
      checkb "mentions condition 1"
        (Astring_contains.contains rej_reason "condition 1")
  | Ok _ -> Alcotest.fail "impure test must be rejected");
  (* an inner init that writes program data blocks the optimized variants *)
  let b2 =
    parse_block
      "DO i = 1, k\n  f(i) = 0\n  DO j = 1, l(i)\n    f(i) = f(i) + j\n  ENDDO\nENDDO"
  in
  let fresh2 = Lf_core.Fresh.of_block b2 in
  let nest3 = Result.get_ok (N.of_nest ~fresh:fresh2 (List.hd b2)) in
  (match F.flatten ~fresh:fresh2 ~assume_inner_nonempty:true F.Optimized nest3 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "data-writing init2 must push to general variant");
  (* ... but the general variant still handles it, correctly *)
  let flat = F.flatten_general ~fresh:fresh2 nest3 in
  let setup ctx =
    Env.set ctx.Interp.env "k" (Values.VInt 4);
    Env.set ctx.Interp.env "l"
      (Values.VArr (Values.AInt (Nd.of_array [| 2; 0; 3; 1 |])));
    Env.set ctx.Interp.env "f"
      (Values.VArr (Values.AInt (Nd.create [| 4 |] 0)))
  in
  let c1 = Interp.run_block ~setup b2 in
  let c2 = Interp.run_block ~setup flat in
  checkb "general variant handles pre-statements"
    (Env.equal_on [ "f" ] c1.Interp.env c2.Interp.env)

let t_auto_choice () =
  let fresh = Lf_core.Fresh.of_names [ "i"; "j"; "k"; "l"; "x" ] in
  let _, v =
    F.flatten_auto ~fresh ~assume_inner_nonempty:true (example_nest ())
  in
  checkb "auto picks done-test" (v = F.DoneTest);
  let fresh2 = Lf_core.Fresh.of_names [] in
  let _, v2 = F.flatten_auto ~fresh:fresh2 (example_nest ()) in
  checkb "auto falls back to general without the assertion" (v2 = F.General)

let t_observation_order () =
  (* same instructions in the same order: external calls inside the body
     are observed identically *)
  let src =
    "DO i = 1, k\n  DO j = 1, l(i)\n    CALL obs(i, j)\n  ENDDO\nENDDO"
  in
  let b = parse_block src in
  let fresh = Lf_core.Fresh.of_block b in
  let nest = Result.get_ok (N.of_nest ~fresh (List.hd b)) in
  let setup ctx =
    Interp.register_proc ctx "obs" (fun _ _ -> ());
    Env.set ctx.Interp.env "k" (Values.VInt 5);
    Env.set ctx.Interp.env "l"
      (Values.VArr (Values.AInt (Nd.of_array [| 2; 0; 3; 1; 2 |])))
  in
  List.iter
    (fun variant ->
      let fresh = Lf_core.Fresh.of_block b in
      match
        F.flatten ~fresh
          ~purity:(Lf_analysis.Side_effects.env ())
          ~assume_inner_nonempty:false variant nest
      with
      | Error _ -> ()
      | Ok flat ->
          let r = Lf_core.Validate.compare_runs ~setup ~vars:[] b flat in
          checkb
            (Printf.sprintf "call order preserved (%s)"
               (F.variant_to_string variant))
            r.Lf_core.Validate.ok)
    [ F.General ]

let prop_flatten_preserves variant (en : Gen.exec_nest) =
  let loop = List.nth en.Gen.src_block (List.length en.Gen.src_block - 1) in
  let pre =
    List.filteri (fun i _ -> i < List.length en.Gen.src_block - 1) en.Gen.src_block
  in
  let fresh = Lf_core.Fresh.of_block en.Gen.src_block in
  match N.of_nest ~fresh loop with
  | Error _ -> true
  | Ok nest -> (
      match
        F.flatten ~fresh ~assume_inner_nonempty:en.Gen.inner_nonempty variant
          nest
      with
      | Error _ -> true  (* precondition not met: nothing to check *)
      | Ok flat ->
          let c1 =
            Interp.run_block ~setup:(Gen.exec_setup en) en.Gen.src_block
          in
          let c2 = Interp.run_block ~setup:(Gen.exec_setup en) (pre @ flat) in
          Env.equal_on Gen.exec_observables c1.Interp.env c2.Interp.env
          || QCheck.Test.fail_reportf "nest:@.%s@.flattened:@.%s"
               (Pretty.block_to_string en.Gen.src_block)
               (Pretty.block_to_string flat))

let suite =
  [
    case "Figure 12 golden" t_fig12_golden;
    case "Figure 11 golden" t_fig11_golden;
    case "Figure 10 structure" t_fig10_structure;
    case "Figure 9 guards" t_guards_fig9;
    case "all variants compute EXAMPLE" t_all_variants_equivalent;
    case "precondition checking" t_preconditions;
    case "automatic variant choice" t_auto_choice;
    case "observation order preserved" t_observation_order;
    qcheck_case ~count:300 "random nests: general preserves semantics"
      Gen.exec_nest_gen
      (prop_flatten_preserves F.General);
    qcheck_case ~count:300 "random nests: optimized preserves semantics"
      Gen.exec_nest_gen
      (prop_flatten_preserves F.Optimized);
    qcheck_case ~count:300 "random nests: done-test preserves semantics"
      Gen.exec_nest_gen
      (prop_flatten_preserves F.DoneTest);
  ]
