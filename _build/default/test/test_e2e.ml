(** End-to-end tests: the full compiler path on the paper's NBFORCE kernel
    (Figures 13 → 15/16), executed on the interpreters against a real
    synthetic pairlist, cross-checked numerically and in step counts. *)

open Helpers
open Lf_lang
module P = Lf_core.Pipeline
module Src = Lf_kernels.Nbforce_src

let workload () =
  let mol = Lf_md.Workload.sod ~n:96 ~seed:13 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:7.0 in
  (mol, pl)

let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs b)

let t_sequential_flatten () =
  let mol, pl = workload () in
  let reference = Src.reference mol pl in
  let prog = Src.program () in
  let f0, steps0 = Src.run_sequential prog mol pl in
  checkb "original matches oracle" (Array.for_all2 close f0 reference);
  let opts = { P.default_options with assume_inner_nonempty = true } in
  match P.flatten_program ~opts prog with
  | Error e -> Alcotest.fail e
  | Ok o ->
      checkb "NBFORCE safety proved (not just asserted)"
        o.P.safety.Lf_analysis.Parallel.parallel;
      let f1, steps1 = Src.run_sequential o.P.program mol pl in
      checkb "flattened matches oracle" (Array.for_all2 close f1 reference);
      (* sequentially, flattening neither adds nor removes force calls *)
      checkb "similar step counts sequentially"
        (steps1 < 3 * steps0 && steps0 < 3 * steps1)

let t_simd_both_decompositions () =
  let mol, pl = workload () in
  let reference = Src.reference mol pl in
  let p_lanes = 16 in
  List.iter
    (fun decomp ->
      let opts =
        {
          P.default_options with
          assume_inner_nonempty = true;
          target = P.Simd { decomp; p = Ast.EInt p_lanes };
        }
      in
      match P.flatten_program ~opts (Src.program ()) with
      | Error e -> Alcotest.fail e
      | Ok o ->
          let f, _ = Src.run_simd o.P.program mol pl ~p:p_lanes in
          checkb
            (Printf.sprintf "flattened SIMD (%s) matches oracle"
               (Lf_core.Simdize.decomp_to_string decomp))
            (Array.for_all2 close f reference))
    [ Lf_core.Simdize.Block; Lf_core.Simdize.Cyclic ]

let t_naive_simd () =
  let mol, pl = workload () in
  let reference = Src.reference mol pl in
  let p_lanes = 16 in
  let opts =
    {
      P.default_options with
      target = P.Simd { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p_lanes };
    }
  in
  match P.simdize_program_naive ~opts (Src.program ()) with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let f, _ = Src.run_simd o.P.program mol pl ~p:p_lanes in
      checkb "naive SIMD matches oracle" (Array.for_all2 close f reference)

let t_flattened_beats_naive () =
  (* the headline claim, end to end through the compiler: on the same
     machine the flattened program issues fewer force-routine vector steps
     (the paper's Table 2 measure), and they agree numerically *)
  let mol, pl = workload () in
  let p_lanes = 16 in
  let reference = Src.reference mol pl in
  let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs b) in
  let opts =
    {
      P.default_options with
      assume_inner_nonempty = true;
      pure_subroutines = [ "onef" ];
      target =
        P.Simd { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt p_lanes };
    }
  in
  match
    ( P.simdize_program_naive ~opts (Src.program_call ()),
      P.flatten_program ~opts (Src.program_call ()) )
  with
  | Ok naive, Ok flat ->
      let f_naive, m_naive =
        Src.run_simd_call naive.P.program mol pl ~p:p_lanes
      in
      let f_flat, m_flat =
        Src.run_simd_call flat.P.program mol pl ~p:p_lanes
      in
      checkb "naive matches oracle" (Array.for_all2 close f_naive reference);
      checkb "flat matches oracle" (Array.for_all2 close f_flat reference);
      let calls m = Lf_simd.Metrics.call_count m "onef" in
      (* the paper's bounds: naive = sum of per-group maxima (Eq. 2),
         flattened = max of per-lane sums (Eq. 1') *)
      let trips =
        Lf_core.Bounds.distribute ~p:p_lanes `Cyclic
          (Array.map (max 1) pl.Lf_md.Pairlist.pcnt)
      in
      checki "flattened calls = Eq. 1'" (Lf_core.Bounds.time_mimd trips)
        (calls m_flat);
      checki "naive calls = Eq. 2" (Lf_core.Bounds.time_simd trips)
        (calls m_naive);
      checkb "fewer force calls after flattening"
        (calls m_flat < calls m_naive)
  | Error e, _ | _, Error e -> Alcotest.fail e

let suite =
  [
    case "sequential flattening of NBFORCE" t_sequential_flatten;
    case "flattened SIMD, both decompositions" t_simd_both_decompositions;
    case "naive SIMD correctness" t_naive_simd;
    case "flattening reduces vector steps" t_flattened_beats_naive;
  ]
