(** MIMD simulator tests (paper §3, Figure 3). *)

open Helpers
open Lf_lang

(** The F77_MIMD version of EXAMPLE (Figure 3): each processor runs the
    same program over its renamed local arrays. *)
let mimd_example_src =
  {|
  DO i = 1, kp
    DO j = 1, lp(i)
      CALL work(i, j)
      xp(i, j) = i * j
    ENDDO
  ENDDO
|}

let setup_block proc ctx =
  (* block decomposition of the paper's data over 2 processors *)
  let local = Array.sub paper_l (proc * 4) 4 in
  Env.set ctx.Interp.env "kp" (Values.VInt 4);
  Env.set ctx.Interp.env "lp"
    (Values.VArr (Values.AInt (Nd.of_array local)));
  Env.set ctx.Interp.env "xp"
    (Values.VArr (Values.AInt (Nd.create [| 4; 4 |] 0)))

let t_example () =
  let r =
    Lf_mimd.Mimd_vm.run_block ~p:2
      ~procs:[ ("work", fun _ _ -> ()) ]
      ~setup:setup_block
      (parse_block mimd_example_src)
  in
  (* Equation 1: both processors perform 8 inner iterations *)
  checkb "per-processor call counts" (r.Lf_mimd.Mimd_vm.calls = [| 8; 8 |]);
  checki "TIME_MIMD (Eq. 1)" 8 r.Lf_mimd.Mimd_vm.call_time;
  (* each processor computed its own rows *)
  Array.iteri
    (fun proc ctx ->
      match Env.find ctx.Lf_lang.Interp.env "xp" with
      | Values.VArr (Values.AInt x) ->
          for i = 1 to 4 do
            let gi = (proc * 4) + i in
            for j = 1 to paper_l.(gi - 1) do
              checki
                (Printf.sprintf "proc %d x(%d,%d)" proc i j)
                (i * j)
                (Nd.get x [| i; j |])
            done
          done
      | _ -> Alcotest.fail "xp missing")
    r.Lf_mimd.Mimd_vm.contexts

let t_imbalance () =
  (* with a bad distribution, TIME_MIMD reflects the slowest processor *)
  let setup proc ctx =
    let local = if proc = 0 then [| 4; 4; 4; 4 |] else [| 1; 1; 1; 1 |] in
    Env.set ctx.Interp.env "kp" (Values.VInt 4);
    Env.set ctx.Interp.env "lp" (Values.VArr (Values.AInt (Nd.of_array local)));
    Env.set ctx.Interp.env "xp"
      (Values.VArr (Values.AInt (Nd.create [| 4; 4 |] 0)))
  in
  let r =
    Lf_mimd.Mimd_vm.run_block ~p:2
      ~procs:[ ("work", fun _ _ -> ()) ]
      ~setup
      (parse_block mimd_example_src)
  in
  checkb "imbalanced calls" (r.Lf_mimd.Mimd_vm.calls = [| 16; 4 |]);
  checki "time is the maximum" 16 r.Lf_mimd.Mimd_vm.call_time

let suite =
  [
    case "EXAMPLE on 2 processors (Figure 3)" t_example;
    case "load imbalance shows in the bound" t_imbalance;
  ]
