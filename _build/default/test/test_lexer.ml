(** Lexer tests: token streams, comments, continuations, dotted operators,
    numeric literals, and error positions. *)

open Helpers
open Lf_lang
open Token

let toks src = List.map snd (Lexer.tokenize src) |> List.filter (( <> ) EOF)

let tok_list =
  Alcotest.testable
    (fun ppf ts ->
      Fmt.pf ppf "[%s]" (String.concat "; " (List.map Token.to_string ts)))
    ( = )

let t_simple () =
  check tok_list "assignment" [ IDENT "x"; ASSIGN; INT 1 ] (toks "x = 1");
  check tok_list "keywords"
    [ KEYWORD "DO"; IDENT "i"; ASSIGN; INT 1; COMMA; IDENT "k" ]
    (toks "DO i = 1, k");
  check tok_list "case-insensitive keyword"
    [ KEYWORD "ENDDO" ] (toks "enddo");
  check tok_list "identifiers lower-cased" [ IDENT "pcnt" ] (toks "pCnt")

let t_operators () =
  check tok_list "relational symbols"
    [ IDENT "a"; LE; IDENT "b"; NE; IDENT "c"; GE; IDENT "d" ]
    (toks "a <= b /= c >= d");
  check tok_list "dotted operators"
    [ IDENT "a"; AND; NOT; IDENT "b"; OR; TRUE ]
    (toks "a .AND. .NOT. b .OR. .TRUE.");
  check tok_list "dotted relations"
    [ IDENT "a"; EQ; IDENT "b"; LT; IDENT "c" ]
    (toks "a .EQ. b .LT. c");
  check tok_list "power vs star"
    [ IDENT "a"; POW; INT 2; STAR; IDENT "b" ]
    (toks "a ** 2 * b");
  check tok_list "== and =" [ IDENT "a"; EQ; IDENT "b"; ASSIGN; INT 0 ]
    (toks "a == b = 0")

let t_numbers () =
  check tok_list "integer" [ INT 42 ] (toks "42");
  check tok_list "real" [ FLOAT 3.5 ] (toks "3.5");
  check tok_list "real with exponent" [ FLOAT 1.5e3 ] (toks "1.5e3");
  check tok_list "double exponent" [ FLOAT 2.5e-2 ] (toks "2.5d-2");
  check tok_list "trailing dot" [ FLOAT 4.0; COMMA ] (toks "4. ,");
  (* a digit followed by a dotted operator must stay an integer *)
  check tok_list "int before dotted op" [ INT 1; AND; INT 2 ]
    (toks "1 .AND. 2");
  check tok_list "leading dot real" [ FLOAT 0.5 ] (toks ".5")

let t_comments () =
  check tok_list "full-line C comment" [ IDENT "a"; ASSIGN; INT 1 ]
    (toks "C this is a comment\na = 1");
  check tok_list "bang comment" [ IDENT "a"; ASSIGN; INT 1 ]
    (toks "a = 1 ! trailing");
  check tok_list "star comment line"
    [ IDENT "a"; ASSIGN; INT 1 ]
    (toks "* full line\na = 1");
  (* an identifier starting with c must not be treated as a comment *)
  check tok_list "c-identifier"
    [ IDENT "count"; ASSIGN; INT 0 ]
    (toks "count = 0")

let t_newlines () =
  check tok_list "collapsed newlines"
    [ IDENT "a"; ASSIGN; INT 1; NEWLINE; IDENT "b"; ASSIGN; INT 2 ]
    (toks "a = 1\n\n\nb = 2");
  check tok_list "continuation joins lines"
    [ IDENT "a"; ASSIGN; INT 1; PLUS; INT 2 ]
    (toks "a = 1 + &\n 2")

let t_brackets () =
  check tok_list "vector literal"
    [ LBRACKET; INT 1; COLON; IDENT "p"; RBRACKET ]
    (toks "[1:p]")

let t_errors () =
  let lex_fails s =
    match toks s with
    | exception Errors.Lex_error _ -> true
    | _ -> false
  in
  checkb "unknown char" (lex_fails "a = #");
  checkb "bad dotted op" (lex_fails "a .NAND. b");
  checkb "unterminated dotted op" (lex_fails "a .AND b")

let t_positions () =
  match Lexer.tokenize "a = 1\n  b = 2" with
  | (_ :: _ :: _ :: _ :: (p, IDENT "b") :: _) ->
      checki "line" 2 p.Errors.line;
      checki "col" 3 p.Errors.col
  | _ -> Alcotest.fail "unexpected token stream"

let suite =
  [
    case "simple statements" t_simple;
    case "operators" t_operators;
    case "numeric literals" t_numbers;
    case "comments" t_comments;
    case "newlines and continuations" t_newlines;
    case "vector brackets" t_brackets;
    case "lexical errors" t_errors;
    case "source positions" t_positions;
  ]
