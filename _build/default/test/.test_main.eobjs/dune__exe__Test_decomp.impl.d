test/test_decomp.ml: Array Helpers Lf_kernels Lf_md Lf_simd List
