test/test_fuzz.ml: Array Ast Ast_util Env Errors Gen Helpers Interp Lf_core Lf_lang Lf_simd List Nd Parser Pretty Printexc QCheck Simplify Typecheck Values
