test/test_runtime.ml: Alcotest Array Ast Errors Float Helpers Interp Intrinsics Lf_core Lf_lang Lf_simd List Nd Values
