test/test_pipeline.ml: Alcotest Array Ast Astring_contains Env Helpers Interp Lf_analysis Lf_core Lf_lang Lf_report Lf_simd List Nd Pretty Result Values
