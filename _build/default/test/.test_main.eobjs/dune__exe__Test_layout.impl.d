test/test_layout.ml: Alcotest Array Helpers Lf_simd List QCheck
