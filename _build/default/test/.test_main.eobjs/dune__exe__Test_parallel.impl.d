test/test_parallel.ml: Alcotest Ast Helpers Lf_analysis Lf_kernels Lf_lang List
