test/test_interp.ml: Alcotest Array Env Errors Float Helpers Interp Lf_lang List Nd Printf Values
