test/helpers.ml: Alcotest Array Env Fmt Int Interp Lf_core Lf_lang List Nd Parser QCheck QCheck_alcotest Values
