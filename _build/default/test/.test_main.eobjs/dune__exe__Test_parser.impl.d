test/test_parser.ml: Alcotest Ast Errors Fmt Helpers Lf_lang List Pretty String
