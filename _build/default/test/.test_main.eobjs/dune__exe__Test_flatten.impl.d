test/test_flatten.ml: Alcotest Ast Astring_contains Env Gen Helpers Interp Lf_analysis Lf_core Lf_lang List Nd Pretty Printf QCheck Result Values
