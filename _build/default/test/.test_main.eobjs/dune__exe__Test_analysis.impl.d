test/test_analysis.ml: Alcotest Ast Ast_util Env Helpers Interp Lf_analysis Lf_lang List Pretty Values
