test/test_report.ml: Alcotest Array Astring_contains Buffer Fmt Helpers Lf_report List Printf
