test/test_deep.ml: Alcotest Array Ast Ast_util Env Helpers Interp Lf_core Lf_lang Lf_simd List Nd Printf QCheck Values
