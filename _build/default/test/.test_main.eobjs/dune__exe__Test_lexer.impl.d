test/test_lexer.ml: Alcotest Errors Fmt Helpers Lexer Lf_lang List String Token
