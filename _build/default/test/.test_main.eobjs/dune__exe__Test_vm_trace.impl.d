test/test_vm_trace.ml: Alcotest Array Ast Helpers Lf_core Lf_kernels Lf_lang Lf_report Lf_simd List Nd Parser Values
