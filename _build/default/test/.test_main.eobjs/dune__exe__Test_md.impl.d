test/test_md.ml: Array Float Helpers Lf_md List Printf
