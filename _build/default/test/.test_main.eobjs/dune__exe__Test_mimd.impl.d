test/test_mimd.ml: Alcotest Array Env Helpers Interp Lf_lang Lf_mimd Nd Printf Values
