test/test_depend.ml: Alcotest Ast Helpers Lf_analysis Lf_lang List
