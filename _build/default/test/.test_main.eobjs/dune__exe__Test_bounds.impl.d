test/test_bounds.ml: Alcotest Array Float Helpers Lf_core List
