test/test_ast_util.ml: Alcotest Ast Ast_util Env Gen Helpers Interp Lf_lang List Values
