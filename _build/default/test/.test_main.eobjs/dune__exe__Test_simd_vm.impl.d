test/test_simd_vm.ml: Alcotest Array Ast Errors Helpers Lf_lang Lf_simd List Nd Parser Values
