test/test_e2e.ml: Alcotest Array Ast Float Helpers Lf_analysis Lf_core Lf_kernels Lf_lang Lf_md Lf_simd List Printf
