test/test_mimdize.ml: Alcotest Array Ast Astring_contains Env Helpers Interp Lf_core Lf_lang Lf_mimd List Nd Pretty Printf Values
