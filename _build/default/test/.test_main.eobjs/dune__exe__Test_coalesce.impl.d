test/test_coalesce.ml: Alcotest Ast Ast_util Astring_contains Env Fmt Helpers Interp Lf_core Lf_lang List Nd Pretty QCheck Result Values
