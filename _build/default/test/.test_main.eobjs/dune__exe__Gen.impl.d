test/gen.ml: Array Ast Env Interp Lf_lang Nd QCheck Values
