test/test_simplify.ml: Char Env Errors Gen Helpers Interp Lf_lang List Nd Pretty QCheck Simplify String Values
