test/test_typecheck.ml: Alcotest Ast Astring_contains Helpers Lf_core Lf_kernels Lf_lang Lf_report List Printf Typecheck
