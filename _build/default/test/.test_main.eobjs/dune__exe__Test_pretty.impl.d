test/test_pretty.ml: Alcotest Ast Gen Helpers Lf_core Lf_kernels Lf_lang Lf_report Parser Pretty Printexc QCheck
