test/test_normalize.ml: Alcotest Ast Env Gen Helpers Interp Lf_core Lf_lang List Nd Option Result Values
