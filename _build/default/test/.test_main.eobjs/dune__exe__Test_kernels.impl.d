test/test_kernels.ml: Array Float Helpers Lf_kernels Lf_md Lf_simd List Printf
