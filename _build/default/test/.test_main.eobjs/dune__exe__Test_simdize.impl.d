test/test_simdize.ml: Alcotest Ast Env Helpers Interp Lf_core Lf_lang Lf_report Lf_simd List Nd Values
