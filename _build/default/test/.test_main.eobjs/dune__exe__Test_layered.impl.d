test/test_layered.ml: Array Float Helpers Lf_kernels Lf_lang Lf_md Lf_simd List
