(** Simplifier tests: golden identities plus the semantic-preservation
    property (a simplified expression evaluates to the same value). *)

open Helpers
open Lf_lang

let simp s = Pretty.expr_to_string (Simplify.simplify (parse_expr s))

let t_identities () =
  checks "x - 1 + 1" "x" (simp "x - 1 + 1");
  checks "x + 1 - 1" "x" (simp "x + 1 - 1");
  checks "x * 1" "x" (simp "x * 1");
  checks "1 * x" "x" (simp "1 * x");
  checks "x + 0" "x" (simp "x + 0");
  checks "x * 0" "0" (simp "x * 0");
  checks "constant folding" "7" (simp "1 + 2 * 3");
  checks "nested constants" "x + 5" (simp "x + 2 + 3");
  checks "comparison folding" ".TRUE." (simp "2 < 3");
  checks "and true" "x > 0" (simp ".TRUE. .AND. x > 0");
  checks "or true" ".TRUE." (simp "x > 0 .OR. .TRUE.");
  checks "double negation" "x" (simp "- - x");
  checks "double not" "b" (simp ".NOT. .NOT. b");
  checks "negated gt" "i <= k" (simp ".NOT. (i > k)");
  checks "negated le" "i > k" (simp ".NOT. (i <= k)");
  checks "negated eq" "i /= k" (simp ".NOT. (i == k)");
  checks "a + x - a (partition arithmetic)" "x" (simp "(1 + x) - 1");
  checks "div by 1" "x" (simp "x / 1");
  checks "exact const div" "4" (simp "8 / 2")

let t_no_unsound_div () =
  (* 7/2 in integers is 3; the simplifier must not fold it as 3.5 or
     rewrite x*2/2 to x (not valid for truncating division chains) *)
  checks "inexact div untouched" "7 / 2" (simp "7 / 2")

(* evaluation environment for the property: all variables are small ints *)
let setup ctx =
  List.iter
    (fun v -> Env.set ctx.Interp.env v (Values.VInt (1 + (Char.code v.[0] mod 5))))
    [ "a"; "b"; "c"; "i"; "j"; "k"; "n" ];
  List.iter
    (fun v ->
      Env.set ctx.Interp.env v
        (Values.VArr (Values.AInt (Nd.create [| 10; 10 |] 3))))
    [ "x"; "l" ]

let eval_opt e =
  let ctx = Interp.create () in
  setup ctx;
  match Interp.eval ctx e with
  | v -> Some v
  | exception Errors.Runtime_error _ -> None

let prop_preserves e =
  let a = eval_opt e and b = eval_opt (Simplify.simplify e) in
  match (a, b) with
  | Some x, Some y ->
      Values.equal_value x y
      || QCheck.Test.fail_reportf "%s -> %s: %s vs %s"
           (Pretty.expr_to_string e)
           (Pretty.expr_to_string (Simplify.simplify e))
           (Values.to_string x) (Values.to_string y)
  | None, _ -> true  (* original errors (div by zero etc.): no claim *)
  | Some _, None ->
      QCheck.Test.fail_reportf "simplified form errors: %s"
        (Pretty.expr_to_string e)

let suite =
  [
    case "golden identities" t_identities;
    case "no unsound division folding" t_no_unsound_div;
    qcheck_case ~count:1000 "simplify preserves evaluation" Gen.expr
      prop_preserves;
  ]
