(** Time-bound tests (Equations 1 and 2): the paper's numbers, the
    flattened-never-worse theorem, and the distribution helpers. *)

open Helpers
module B = Lf_core.Bounds

let t_paper_numbers () =
  let trips = B.distribute ~p:2 `Block paper_l in
  checki "Eq. 1" 8 (B.time_mimd trips);
  checki "Eq. 2" 12 (B.time_simd trips);
  checki "flattened bound" 8 (B.flattened_time trips);
  checkb "speedup" (Float.abs (B.speedup trips -. 1.5) < 1e-9)

let t_degenerate () =
  checki "empty" 0 (B.time_mimd [||]);
  checki "empty simd" 0 (B.time_simd [||]);
  let uniform = B.of_lists [ [ 3; 3 ]; [ 3; 3 ] ] in
  checki "uniform mimd" 6 (B.time_mimd uniform);
  checki "uniform simd equals mimd" 6 (B.time_simd uniform);
  (* ragged outer trip counts: exhausted processors contribute nothing *)
  let ragged = B.of_lists [ [ 5 ]; [ 1; 1; 1 ] ] in
  checki "ragged mimd" 5 (B.time_mimd ragged);
  checki "ragged simd" 7 (B.time_simd ragged)

let t_distribute () =
  let l = [| 1; 2; 3; 4; 5; 6 |] in
  let blk = B.distribute ~p:2 `Block l in
  checkb "block halves" (blk = [| [| 1; 2; 3 |]; [| 4; 5; 6 |] |]);
  let cyc = B.distribute ~p:2 `Cyclic l in
  checkb "cyclic interleaves" (cyc = [| [| 1; 3; 5 |]; [| 2; 4; 6 |] |]);
  match B.distribute ~p:4 `Block l with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-dividing P must be rejected"

let prop_flattened_never_worse (p, l) =
  let pad = Array.length l mod p in
  let l = if pad = 0 then l else Array.append l (Array.make (p - pad) 0) in
  List.for_all
    (fun layout ->
      let trips = B.distribute ~p layout l in
      B.time_mimd trips <= B.time_simd trips)
    [ `Block; `Cyclic ]

let prop_equal_iff_uniform (p, l) =
  (* with identical trip counts everywhere, the two bounds coincide *)
  let k = max 1 (Array.length l / max 1 p * p) in
  let c = if Array.length l = 0 then 1 else max 0 l.(0) in
  let uniform = Array.make k c in
  let trips = B.distribute ~p:1 `Block uniform in
  B.time_mimd trips = B.time_simd trips

let suite =
  [
    case "the paper's EXAMPLE numbers" t_paper_numbers;
    case "degenerate shapes" t_degenerate;
    case "distribution helpers" t_distribute;
    qcheck_case ~count:500 "flattened bound never exceeds SIMD bound"
      Helpers.trips_gen prop_flattened_never_worse;
    qcheck_case ~count:100 "bounds coincide on uniform workloads"
      Helpers.trips_gen prop_equal_iff_uniform;
  ]
