(** Unit tests for the runtime substrate: [Nd] arrays, [Pval] plural
    values, [Fresh] names, [Validate] reports, and intrinsic edge cases. *)

open Helpers
open Lf_lang
open Values

(* ------------------------------------------------------------------ *)
(* Nd                                                                  *)
(* ------------------------------------------------------------------ *)

let t_nd_basics () =
  let a = Nd.create [| 3; 2 |] 0 in
  checki "size" 6 (Nd.size a);
  checki "rank" 2 (Nd.rank a);
  Nd.set a [| 2; 1 |] 7;
  checki "get" 7 (Nd.get a [| 2; 1 |]);
  (* column-major: (2,1) is flat index 1 *)
  checki "column-major layout" 7 (Nd.get_flat a 1);
  (match Nd.get a [| 4; 1 |] with
  | exception Errors.Runtime_error _ -> ()
  | _ -> Alcotest.fail "bounds");
  (match Nd.get a [| 1 |] with
  | exception Errors.Runtime_error _ -> ()
  | _ -> Alcotest.fail "rank mismatch")

let t_nd_init_order () =
  (* init enumerates indices column-major, first index fastest *)
  let a = Nd.init [| 2; 2 |] (fun idx -> (10 * idx.(0)) + idx.(1)) in
  checkb "order" (Nd.to_array a = [| 11; 21; 12; 22 |])

let t_nd_slice () =
  let a = Nd.init [| 4; 3 |] (fun idx -> (10 * idx.(0)) + idx.(1)) in
  let row = Nd.slice a [ `One 2; `Range (1, 3) ] in
  checkb "row slice" (Nd.to_array row = [| 21; 22; 23 |]);
  let col = Nd.slice a [ `Range (2, 4); `One 3 ] in
  checkb "column slice" (Nd.to_array col = [| 23; 33; 43 |]);
  Nd.blit_slice a [ `Range (1, 2); `One 1 ] (`Scalar 0);
  checki "blit scalar" 0 (Nd.get a [| 1; 1 |]);
  checki "blit leaves rest" 31 (Nd.get a [| 3; 1 |])

let t_nd_map2 () =
  let a = Nd.of_array [| 1; 2; 3 |] and b = Nd.of_array [| 10; 20; 30 |] in
  checkb "map2" (Nd.to_array (Nd.map2 ( + ) a b) = [| 11; 22; 33 |]);
  let c = Nd.of_array [| 1; 2 |] in
  match Nd.map2 ( + ) a c with
  | exception Errors.Runtime_error _ -> ()
  | _ -> Alcotest.fail "shape mismatch"

(* ------------------------------------------------------------------ *)
(* Pval                                                                *)
(* ------------------------------------------------------------------ *)

module Pv = Lf_simd.Pval

let mask = [| true; false; true |]

let t_pval_lift () =
  let a = Pv.Plural [| VInt 1; VInt 2; VInt 3 |] in
  let b = Pv.FScalar (VInt 10) in
  (match Pv.lift2 ~mask (Interp.apply_binop Ast.Add) a b with
  | Pv.Plural [| VInt 11; _; VInt 13 |] -> ()
  | v -> Alcotest.failf "lift2: %s" (Pv.to_string v));
  (* two front-end scalars stay front-end *)
  match Pv.lift2 ~mask (Interp.apply_binop Ast.Mul) b b with
  | Pv.FScalar (VInt 100) -> ()
  | v -> Alcotest.failf "scalar lift: %s" (Pv.to_string v)

let t_pval_masked_lanes_untouched () =
  (* the inactive lane must not be evaluated: pass a poison value that
     would raise *)
  let a = Pv.Plural [| VInt 1; VBool true; VInt 3 |] in
  match Pv.lift1 ~mask (fun v -> VInt (as_int v * 2)) a with
  | Pv.Plural [| VInt 2; _; VInt 6 |] -> ()
  | v -> Alcotest.failf "lift1: %s" (Pv.to_string v)

let t_pval_reduce () =
  let a = Pv.Plural [| VInt 5; VInt 100; VInt 3 |] in
  let m =
    Pv.reduce ~mask ~empty:(VInt min_int)
      (fun x y -> if as_int x >= as_int y then x else y)
      a
  in
  checki "masked max skips lane 2" 5 (as_int m);
  let none = Array.make 3 false in
  checki "empty mask yields empty value" 42
    (as_int (Pv.reduce ~mask:none ~empty:(VInt 42) (fun x _ -> x) a))

let t_pval_broadcast () =
  match Pv.broadcast 4 (VInt 9) with
  | Pv.Plural vs ->
      checki "length" 4 (Array.length vs);
      checki "lane" 9 (as_int (Pv.lane (Pv.Plural vs) 3))
  | _ -> Alcotest.fail "broadcast"

(* ------------------------------------------------------------------ *)
(* Fresh                                                               *)
(* ------------------------------------------------------------------ *)

let t_fresh () =
  let f = Lf_core.Fresh.of_names [ "t1"; "i" ] in
  checks "avoids taken" "t1_1" (Lf_core.Fresh.fresh f "t1");
  checks "second collision" "t1_2" (Lf_core.Fresh.fresh f "t1");
  checks "free name unchanged" "j" (Lf_core.Fresh.fresh f "j");
  checks "now taken" "j_1" (Lf_core.Fresh.fresh f "j");
  Lf_core.Fresh.reserve f "q";
  checks "reserved" "q_1" (Lf_core.Fresh.fresh f "q");
  let g = Lf_core.Fresh.of_block (parse_block "x(i) = y + 1") in
  checks "block names seen" "x_1" (Lf_core.Fresh.fresh g "x")

(* ------------------------------------------------------------------ *)
(* Validate                                                            *)
(* ------------------------------------------------------------------ *)

let t_validate_catches_divergence () =
  let a = parse_block "s = 1" and b = parse_block "s = 2" in
  let r = Lf_core.Validate.compare_runs ~vars:[ "s" ] a b in
  checkb "mismatch detected" (not r.Lf_core.Validate.ok);
  (match r.Lf_core.Validate.mismatches with
  | [ Lf_core.Validate.Var_differs ("s", Some (VInt 1), Some (VInt 2)) ] -> ()
  | _ -> Alcotest.fail "mismatch shape");
  (* observation divergence *)
  let setup ctx = Interp.register_proc ctx "obs" (fun _ _ -> ()) in
  let a = parse_block "CALL obs(1)" and b = parse_block "CALL obs(2)" in
  let r = Lf_core.Validate.compare_runs ~setup ~vars:[] a b in
  checkb "observation mismatch" (not r.Lf_core.Validate.ok);
  let c = parse_block "CALL obs(1)\nCALL obs(1)" in
  let r2 = Lf_core.Validate.compare_runs ~setup ~vars:[] a c in
  checkb "length mismatch"
    (List.exists
       (function Lf_core.Validate.Obs_length _ -> true | _ -> false)
       r2.Lf_core.Validate.mismatches)

let t_validate_accepts_equal () =
  let a = parse_block "s = 2 + 3" and b = parse_block "s = 5" in
  let r = Lf_core.Validate.compare_runs ~vars:[ "s" ] a b in
  checkb "equal runs accepted" r.Lf_core.Validate.ok

(* ------------------------------------------------------------------ *)
(* Intrinsics edge cases                                               *)
(* ------------------------------------------------------------------ *)

let t_intrinsics_edges () =
  checkb "not an intrinsic" (Intrinsics.apply "force" [ VInt 1 ] = None);
  (match Intrinsics.apply "maxval" [ VArr (AInt (Nd.of_array [||])) ] with
  | exception Errors.Runtime_error _ -> ()
  | _ -> Alcotest.fail "maxval of empty");
  (match Intrinsics.apply "mod" [ VInt 5; VInt 0 ] with
  | exception Errors.Runtime_error _ -> ()
  | _ -> Alcotest.fail "mod by zero");
  checkb "merge true"
    (Intrinsics.apply "merge" [ VInt 1; VInt 2; VBool true ] = Some (VInt 1));
  checkb "size dim"
    (Intrinsics.apply "size"
       [ VArr (AInt (Nd.create [| 3; 5 |] 0)); VInt 2 ]
    = Some (VInt 5));
  (match Intrinsics.apply "size"
           [ VArr (AInt (Nd.create [| 3 |] 0)); VInt 9 ]
   with
  | exception Errors.Runtime_error _ -> ()
  | _ -> Alcotest.fail "size out of range");
  checkb "mixed max promotes"
    (match Intrinsics.apply "max" [ VInt 1; VReal 2.5 ] with
    | Some (VReal f) -> Float.abs (f -. 2.5) < 1e-12
    | _ -> false)

let suite =
  [
    case "nd basics" t_nd_basics;
    case "nd init order" t_nd_init_order;
    case "nd slicing" t_nd_slice;
    case "nd map2" t_nd_map2;
    case "pval lifting" t_pval_lift;
    case "pval masked lanes untouched" t_pval_masked_lanes_untouched;
    case "pval reductions" t_pval_reduce;
    case "pval broadcast" t_pval_broadcast;
    case "fresh names" t_fresh;
    case "validate catches divergence" t_validate_catches_divergence;
    case "validate accepts equality" t_validate_accepts_equal;
    case "intrinsic edge cases" t_intrinsics_edges;
  ]
