(** Compiler-pipeline tests (paper §6): applicability, safety,
    profitability, declaration handling, and program-level rewriting. *)

open Helpers
open Lf_lang
open Ast
module P = Lf_core.Pipeline

let flatten ?(opts = { P.default_options with assume_inner_nonempty = true })
    src =
  P.flatten_program ~opts (parse_program src)

let t_sequential_target () =
  match flatten Lf_report.Experiments.example_source with
  | Error e -> Alcotest.fail e
  | Ok o ->
      checkb "done-test chosen" (o.P.variant_used = Lf_core.Flatten.DoneTest);
      checkb "profitable (inner bound varies with i)" o.P.profitable;
      checkb "safe" o.P.safety.Lf_analysis.Parallel.parallel;
      (* the result still computes EXAMPLE *)
      let reference = example_x () in
      let ctx =
        Interp.run ~params:[ ("k", Values.VInt 8) ]
          ~setup:(fun ctx -> example_setup ctx)
          o.P.program
      in
      check int_nd "flattened program output" reference (get_x ctx)

let t_statements_around_nest () =
  (* statements before/after the nest survive the rewrite *)
  let src =
    {|
PROGRAM p
  INTEGER k, x(8,4), l(8)
  s = 0
  DO i = 1, k
    DO j = 1, l(i)
      x(i,j) = i * j
    ENDDO
  ENDDO
  s = s + 1
END
|}
  in
  match flatten src with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match (List.hd o.P.program.p_body, List.rev o.P.program.p_body) with
      | SAssign ({ lv_name = "s"; _ }, _), SAssign ({ lv_name = "s"; _ }, _) :: _
        ->
          ()
      | _ -> Alcotest.fail "pre/post statements lost")

let t_goto_nest () =
  (* a classic F77 GOTO nest flattens after restructuring *)
  let src =
    {|
PROGRAM p
  INTEGER k, x(8,4), l(8)
  i = 1
10 CONTINUE
  IF (i > k) GOTO 40
  j = 1
20 CONTINUE
  IF (j > l(i)) GOTO 30
  x(i, j) = i * j
  j = j + 1
  GOTO 20
30 CONTINUE
  i = i + 1
  GOTO 10
40 CONTINUE
END
|}
  in
  match flatten src with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let reference = example_x () in
      let ctx =
        Interp.run ~params:[ ("k", Values.VInt 8) ]
          ~setup:(fun ctx -> example_setup ctx)
          o.P.program
      in
      check int_nd "flattened GOTO nest output" reference (get_x ctx)

let t_safety_rejection () =
  let src =
    {|
PROGRAM p
  INTEGER a(10)
  DO i = 2, 9
    DO j = 1, 3
      a(i) = a(i - 1) + j
    ENDDO
  ENDDO
END
|}
  in
  (match flatten src with
  | Error e -> checkb "mentions safety" (Astring_contains.contains e "not safe")
  | Ok _ -> Alcotest.fail "carried dependence must be rejected");
  (* the user can override *)
  let opts =
    { P.default_options with assume_inner_nonempty = true; trusted_parallel = true }
  in
  checkb "trusted override" (Result.is_ok (flatten ~opts src))

let t_applicability_rejection () =
  let src = "PROGRAM p\n  s = 1\nEND" in
  (match flatten src with
  | Error e -> checkb "no loop" (Astring_contains.contains e "no loop")
  | Ok _ -> Alcotest.fail "must fail");
  let src2 =
    "PROGRAM p\n  DO i = 1, 4\n    s = i\n  ENDDO\nEND"
  in
  match flatten src2 with
  | Error e ->
      checkb "not applicable" (Astring_contains.contains e "not applicable")
  | Ok _ -> Alcotest.fail "single loop must be rejected"

let t_unprofitable_detected () =
  (* inner bound independent of the outer variable: applicable and safe,
     but not profitable *)
  let src =
    "PROGRAM p\n  INTEGER x(8,4)\n  DO i = 1, 8\n    DO j = 1, 4\n      x(i,j) = i\n    ENDDO\n  ENDDO\nEND"
  in
  match flatten src with
  | Error e -> Alcotest.fail e
  | Ok o -> checkb "not profitable" (not o.P.profitable)

let t_new_declarations () =
  let opts =
    {
      P.default_options with
      assume_inner_nonempty = true;
      variant = Some Lf_core.Flatten.General;
    }
  in
  match flatten ~opts Lf_report.Experiments.example_source with
  | Error e -> Alcotest.fail e
  | Ok o ->
      (* guard flags declared as LOGICAL *)
      List.iter
        (fun v ->
          match
            List.find_opt (fun d -> d.dc_name = v) o.P.program.p_decls
          with
          | Some d -> checkb (v ^ " is logical") (d.dc_type = TLogical)
          | None -> Alcotest.failf "missing declaration for %s" v)
        [ "t1"; "t2" ]

let t_forced_variant_rejection () =
  let opts =
    {
      P.default_options with
      variant = Some Lf_core.Flatten.DoneTest;
      assume_inner_nonempty = false;
    }
  in
  match flatten ~opts Lf_report.Experiments.example_source with
  | Error e ->
      checkb "explains variant failure"
        (Astring_contains.contains e "not applicable")
  | Ok _ -> Alcotest.fail "forced variant must respect preconditions"

let t_simd_requires_counted () =
  let opts =
    {
      P.default_options with
      assume_inner_nonempty = true;
      trusted_parallel = true;
      target = P.Simd { decomp = Lf_core.Simdize.Cyclic; p = EVar "p" };
    }
  in
  (* a rerollable counted WHILE now succeeds for the SIMD target *)
  let rerollable =
    {|
PROGRAM p
  INTEGER x(8,4), l(8)
  i = 1
  WHILE (i <= 8)
    DO j = 1, l(i)
      x(i,j) = i
    ENDDO
    i = i + 1
  ENDWHILE
END
|}
  in
  checkb "counted while rerolls for SIMD"
    (Result.is_ok (flatten ~opts rerollable));
  (* a genuinely uncounted loop (variable stride) is still rejected *)
  let uncounted =
    {|
PROGRAM p
  INTEGER x(8,4), l(8), s
  i = 1
  WHILE (i <= 8)
    DO j = 1, l(i)
      x(i,j) = i
    ENDDO
    i = i + s
  ENDWHILE
END
|}
  in
  match flatten ~opts uncounted with
  | Error e ->
      checkb "counted loop required" (Astring_contains.contains e "counted")
  | Ok _ -> Alcotest.fail "SIMD target needs a counted outer loop"

let t_dusty_deck_simd () =
  (* GOTO loops -> restructure -> reroll to DO -> flatten -> SIMDize, all
     automatic; run on the VM against the sequential deck *)
  let src =
    {|
PROGRAM dusty
      INTEGER k, bucket(k), len(k), tab(k, 8)
      i = 1
10    CONTINUE
      IF (i .GT. k) GOTO 40
      j = 1
20    CONTINUE
      IF (j .GT. len(i)) GOTO 30
      bucket(i) = bucket(i) + tab(i, j)
      j = j + 1
      GOTO 20
30    CONTINUE
      i = i + 1
      GOTO 10
40    CONTINUE
END
|}
  in
  let prog = parse_program src in
  let lens = [| 3; 1; 5; 2; 1; 4; 2; 6 |] in
  let bind set =
    set "k" (Values.VInt 8);
    set "len" (Values.VArr (Values.AInt (Nd.of_array lens)));
    set "tab"
      (Values.VArr
         (Values.AInt (Nd.init [| 8; 8 |] (fun ix -> (10 * ix.(0)) + ix.(1)))));
    set "bucket" (Values.VArr (Values.AInt (Nd.create [| 8 |] 0)))
  in
  let ctx = Interp.run ~setup:(fun c -> bind (Env.set c.Interp.env)) prog in
  let reference = Env.find ctx.Interp.env "bucket" in
  let opts =
    {
      P.default_options with
      assume_inner_nonempty = true;
      target =
        P.Simd { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt 4 };
    }
  in
  match P.flatten_program ~opts prog with
  | Error e -> Alcotest.fail e
  | Ok o ->
      checkb "proved safe without annotations"
        o.P.safety.Lf_analysis.Parallel.parallel;
      let vm =
        Lf_simd.Vm.run ~p:4
          ~setup:(fun vm ->
            Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 4);
            bind (fun name v ->
                match v with
                | Values.VArr a -> Lf_simd.Vm.bind_global vm name a
                | v -> Lf_simd.Vm.bind_scalar vm name v))
          o.P.program
      in
      checkb "dusty deck SIMD result"
        (Values.equal_value reference
           (Values.VArr (Lf_simd.Vm.read_global vm "bucket")))

let t_sum_reduction () =
  (* the reduction extension: acc = acc + e lowers to per-lane partials
     plus a final SUM, so the safety check accepts it without trust *)
  let src =
    {|
PROGRAM dots
  INTEGER k, l(8), x(8,4)
  acc = 0
  DO i = 1, k
    DO j = 1, l(i)
      x(i, j) = i * j
      acc = acc + i * j
    ENDDO
  ENDDO
END
|}
  in
  let prog = parse_program src in
  let opts =
    {
      P.default_options with
      assume_inner_nonempty = true;
      target = P.Simd { decomp = Lf_core.Simdize.Cyclic; p = Ast.EInt 2 };
    }
  in
  match P.flatten_program ~opts prog with
  | Error e -> Alcotest.fail e
  | Ok o ->
      checkb "safe without trust (reduction recognized)"
        o.P.safety.Lf_analysis.Parallel.parallel;
      let txt = Pretty.program_to_string o.P.program in
      checkb "partial accumulator introduced"
        (Astring_contains.contains txt "acc_p");
      checkb "final sum emitted"
        (Astring_contains.contains txt "acc + sum(acc_p)");
      (* numerically correct on the VM *)
      let seq =
        Interp.run ~params:[ ("k", Values.VInt 8) ]
          ~setup:(fun ctx -> example_setup ctx)
          prog
      in
      let vm =
        Lf_simd.Vm.run ~p:2
          ~setup:(fun vm ->
            Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 2);
            Lf_simd.Vm.bind_scalar vm "k" (Values.VInt 8);
            Lf_simd.Vm.bind_scalar vm "acc" (Values.VInt 0);
            Lf_simd.Vm.bind_global vm "l"
              (Values.AInt (Nd.of_array paper_l));
            Lf_simd.Vm.bind_global vm "x"
              (Values.AInt (Nd.create [| 8; 4 |] 0)))
          o.P.program
      in
      (match Lf_simd.Vm.find vm "acc" with
      | Lf_simd.Vm.VScalar r ->
          checkb "reduction total"
            (Values.equal_value !r (Env.find seq.Interp.env "acc"))
      | _ -> Alcotest.fail "acc is not a front-end scalar");
      checkb "array agrees"
        (Values.equal_value
           (Env.find seq.Interp.env "x")
           (Values.VArr (Lf_simd.Vm.read_global vm "x")))

let suite =
  [
    case "sequential flattening end to end" t_sequential_target;
    case "sum-reduction extension" t_sum_reduction;
    case "dusty deck: GOTOs to SIMD automatically" t_dusty_deck_simd;
    case "statements around the nest" t_statements_around_nest;
    case "GOTO nest end to end" t_goto_nest;
    case "safety rejection and override" t_safety_rejection;
    case "applicability rejection" t_applicability_rejection;
    case "profitability detection" t_unprofitable_detected;
    case "new declarations" t_new_declarations;
    case "forced-variant precondition" t_forced_variant_rejection;
    case "SIMD target requires counted outer loop" t_simd_requires_counted;
  ]
