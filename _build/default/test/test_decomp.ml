(** Decomposition tests (paper §5.1's load-balancing requirement). *)

open Helpers
module D = Lf_md.Decomp

let workload () =
  let mol = Lf_md.Workload.sod ~n:512 ~seed:21 () in
  Lf_md.Workload.pairlist mol ~cutoff:8.0

let t_partitions () =
  let pl = workload () in
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  List.iter
    (fun (name, d) ->
      checkb (name ^ " is a partition") (D.is_partition ~n d))
    [
      ("block", D.block ~gran:32 ~n);
      ("cyclic", D.cyclic ~gran:32 ~n);
      ("balanced", D.balanced ~gran:32 pl);
      ("block gran>n", D.block ~gran:700 ~n);
      ("cyclic gran>n", D.cyclic ~gran:700 ~n);
    ]

let t_balance_ordering () =
  let pl = workload () in
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let imb d = D.imbalance pl d in
  let i_block = imb (D.block ~gran:32 ~n) in
  let i_cyclic = imb (D.cyclic ~gran:32 ~n) in
  let i_bal = imb (D.balanced ~gran:32 pl) in
  checkb "balanced beats cyclic" (i_bal <= i_cyclic +. 1e-9);
  checkb "cyclic beats block (owner-side trend)" (i_cyclic < i_block);
  checkb "balanced near optimal" (i_bal < 1.05);
  checkb "imbalance at least 1" (i_bal >= 1.0)

let t_kernel_uses_partition () =
  let pl = workload () in
  let mol = Lf_md.Workload.sod ~n:512 ~seed:21 () in
  let m = Lf_simd.Machine.decmpp ~p:32 in
  let steps partition =
    (Lf_kernels.Nbforce.run_flat ~compute_forces:false ~partition m mol pl
       ~nmax:512)
      .Lf_kernels.Nbforce.force_steps
  in
  let loads = D.load pl (D.balanced ~gran:32 pl) in
  checki "kernel steps = makespan of the partition"
    (Array.fold_left max 0 loads)
    (steps (D.balanced ~gran:32 pl));
  checkb "balanced partition runs fewer steps"
    (steps (D.balanced ~gran:32 pl)
    <= steps (D.cyclic ~gran:32 ~n:512))

let t_load_accounting () =
  let pl = workload () in
  let d = D.cyclic ~gran:8 ~n:(Array.length pl.Lf_md.Pairlist.pcnt) in
  let loads = D.load pl d in
  (* every atom costs at least one step, so total load >= n *)
  checkb "total covers all pairs"
    (Array.fold_left ( + ) 0 loads >= Lf_md.Pairlist.n_pairs pl)

let suite =
  [
    case "partitions are exact" t_partitions;
    case "balance ordering" t_balance_ordering;
    case "kernel honors explicit partitions" t_kernel_uses_partition;
    case "load accounting" t_load_accounting;
  ]
