(** Molecular-dynamics substrate tests: pairlist correctness against a
    brute-force oracle, workload statistics, force properties, and
    generator determinism. *)

open Helpers
module Mol = Lf_md.Molecule
module Pl = Lf_md.Pairlist

let small_mol ?(n = 120) () = Lf_md.Workload.sod ~n ~seed:5 ()

let t_cell_list_vs_brute () =
  let m = small_mol () in
  List.iter
    (fun cutoff ->
      let a = Pl.build m ~cutoff and b = Pl.brute_force m ~cutoff in
      checkb
        (Printf.sprintf "same partners at %.1f" cutoff)
        (a.Pl.partners = b.Pl.partners))
    [ 2.0; 5.0; 9.0 ]

let t_pairlist_invariants () =
  let m = small_mol () in
  let pl = Pl.build m ~cutoff:6.0 in
  Array.iteri
    (fun i ps ->
      Array.iter
        (fun j ->
          checkb "owner stores higher index" (j > i);
          checkb "within cutoff"
            (Mol.distance m.Mol.atoms.(i) m.Mol.atoms.(j) <= 6.0))
        ps)
    pl.Pl.partners;
  checki "pair count is sum of pcnt" (Pl.n_pairs pl)
    (Array.fold_left ( + ) 0 (Array.map Array.length pl.Pl.partners))

let t_ensure_nonempty () =
  let m = small_mol () in
  let pl = Pl.ensure_nonempty m (Pl.build m ~cutoff:2.0) in
  Array.iter (fun c -> checkb "pcnt >= 1" (c >= 1)) pl.Pl.pcnt;
  (* idempotent on already-nonempty lists *)
  let pl2 = Pl.ensure_nonempty m pl in
  checkb "idempotent" (pl.Pl.partners = pl2.Pl.partners)

let t_determinism () =
  let a = Mol.sod_uncalibrated ~seed:3 ~n:500 () in
  let b = Mol.sod_uncalibrated ~seed:3 ~n:500 () in
  checkb "same seed, same molecule" (a.Mol.atoms = b.Mol.atoms);
  let c = Mol.sod_uncalibrated ~seed:4 ~n:500 () in
  checkb "different seed differs" (a.Mol.atoms <> c.Mol.atoms);
  checki "exact atom count" 500 (Mol.n_atoms a)

let t_stats () =
  let m = Lf_md.Workload.sod ~n:2000 () in
  let stats =
    Lf_md.Stats.sweep m ~cutoffs:[ 4.0; 8.0; 12.0 ]
  in
  let avgs = List.map (fun s -> s.Lf_md.Stats.pcnt_avg) stats in
  checkb "avg grows with cutoff"
    (match avgs with [ a; b; c ] -> a < b && b < c | _ -> false);
  List.iter
    (fun s ->
      checkb "ratio at least 1" (s.Lf_md.Stats.ratio >= 1.0);
      checkb "max at least avg"
        (float_of_int s.Lf_md.Stats.pcnt_max >= s.Lf_md.Stats.pcnt_avg))
    stats;
  (* cubic growth: avg(2r)/avg(r) in a broad band around 8 *)
  match avgs with
  | [ a4; a8; _ ] -> checkb "roughly cubic" (a8 /. a4 > 4.0 && a8 /. a4 < 12.0)
  | _ -> ()

let t_calibration () =
  let m = Lf_md.Workload.sod () in
  let pl = Pl.build m ~cutoff:8.0 in
  let avg = Pl.avg_pcnt pl in
  checkb "avg at 8A calibrated near the paper's 80"
    (avg > 65.0 && avg < 95.0);
  let s = Lf_md.Stats.of_pairlist pl in
  checkb "max/avg in the paper's band"
    (s.Lf_md.Stats.ratio > 2.0 && s.Lf_md.Stats.ratio < 4.5)

let t_force_antisymmetry () =
  let m = small_mol () in
  let a = m.Mol.atoms.(0) and b = m.Mol.atoms.(1) in
  let fab = Lf_md.Force.pair a b and fba = Lf_md.Force.pair b a in
  checkb "Newton's third law"
    (Float.abs (fab.Lf_md.Force.fx +. fba.Lf_md.Force.fx) < 1e-9
    && Float.abs (fab.Lf_md.Force.fy +. fba.Lf_md.Force.fy) < 1e-9
    && Float.abs (fab.Lf_md.Force.fz +. fba.Lf_md.Force.fz) < 1e-9)

let t_force_reference_balance () =
  (* with both-sides accumulation the total force is (near) zero *)
  let m = small_mol ~n:60 () in
  let pl = Pl.build m ~cutoff:8.0 in
  let f = Lf_md.Force.reference m pl in
  let total = Array.fold_left Lf_md.Force.add Lf_md.Force.zero f in
  let scale =
    Array.fold_left (fun m v -> Float.max m (Lf_md.Force.norm v)) 1.0 f
  in
  checkb "momentum conservation" (Lf_md.Force.norm total < 1e-9 *. scale)

let t_periodic () =
  let m = Mol.uniform_gas ~n:200 ~density:0.05 () in
  let box = Float.cbrt (200.0 /. 0.05) in
  let pl = Pl.brute_force_periodic m ~box ~cutoff:5.0 in
  let open_pl = Pl.brute_force m ~cutoff:5.0 in
  (* periodic counts dominate open-boundary counts (wrap adds neighbours) *)
  checkb "periodic adds pairs" (Pl.n_pairs pl >= Pl.n_pairs open_pl);
  (* minimum-image distance is symmetric and bounded by box*sqrt(3)/2 *)
  let a = m.Mol.atoms.(0) and b = m.Mol.atoms.(1) in
  let d1 = Pl.periodic_distance ~box a b
  and d2 = Pl.periodic_distance ~box b a in
  checkb "symmetric" (Float.abs (d1 -. d2) < 1e-12);
  checkb "bounded" (d1 <= (box *. Float.sqrt 3.0 /. 2.0) +. 1e-9);
  checkb "open distance at least periodic" (Mol.distance a b >= d1 -. 1e-9)

let t_workload_families () =
  let gas = Mol.uniform_gas ~n:400 ~density:0.05 () in
  let drop = Mol.droplet ~n:400 () in
  let s_gas = Lf_md.Stats.of_pairlist (Pl.build gas ~cutoff:5.0) in
  let s_drop = Lf_md.Stats.of_pairlist (Pl.build drop ~cutoff:5.0) in
  checkb "droplet more skewed than gas"
    (s_drop.Lf_md.Stats.ratio > s_gas.Lf_md.Stats.ratio)

let suite =
  [
    case "cell list agrees with brute force" t_cell_list_vs_brute;
    case "pairlist invariants" t_pairlist_invariants;
    case "ensure_nonempty" t_ensure_nonempty;
    case "generator determinism" t_determinism;
    case "statistics" t_stats;
    case "Figure 18 calibration" t_calibration;
    case "force antisymmetry" t_force_antisymmetry;
    case "force balance" t_force_reference_balance;
    case "workload families" t_workload_families;
    case "periodic boundaries" t_periodic;
  ]
