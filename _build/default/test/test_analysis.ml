(** Analysis tests: side effects, loop-nest discovery, GOTO restructuring,
    induction variables. *)

open Helpers
open Lf_lang
open Ast
module L = Lf_analysis.Loop_info
module SE = Lf_analysis.Side_effects

let t_side_effects () =
  let env = SE.default_env in
  checkb "pure comparison" (SE.expr_pure env (parse_expr "i <= l(i)"));
  checkb "intrinsics are pure" (SE.expr_pure env (parse_expr "maxval(l)"));
  let env' = SE.env ~impure_funcs:[ "rand" ] () in
  checkb "registered impure function"
    (not (SE.expr_pure env' (parse_expr "i + rand(1)")));
  checkb "assignment impure" (not (SE.stmt_pure env (List.hd (parse_block "a = 1"))));
  checkb "call impure" (not (SE.stmt_pure env (List.hd (parse_block "CALL f(1)"))));
  checkb "if of pure parts pure"
    (SE.stmt_pure env (List.hd (parse_block "IF (a > 0) THEN\nENDIF")));
  checkb "writes-only accepts control vars"
    (SE.block_writes_only env [ "j" ] (parse_block "j = 1"));
  checkb "writes-only rejects data writes"
    (not (SE.block_writes_only env [ "j" ] (parse_block "j = 1\nf(i) = 0")));
  checkb "writes-only rejects calls"
    (not (SE.block_writes_only env [ "j" ] (parse_block "CALL g()")))

let t_towers () =
  let b = example_block () in
  (match L.tower_of_block b with
  | Some [ _; _ ] -> ()
  | Some l -> Alcotest.failf "tower depth %d" (List.length l)
  | None -> Alcotest.fail "no tower");
  (* two loops at the same level: no tower *)
  let b2 = parse_block "DO i = 1, 2\nENDDO\nDO j = 1, 2\nENDDO" in
  checkb "two top-level loops" (L.tower_of_block b2 = None);
  (* siblings inside the outer loop break the tower at depth 1 *)
  let b3 =
    parse_block
      "DO i = 1, 2\n  DO j = 1, 2\n  ENDDO\n  DO q = 1, 2\n  ENDDO\nENDDO"
  in
  (match L.tower_of_block b3 with
  | Some [ _ ] -> ()
  | _ -> Alcotest.fail "sibling inner loops must cut the tower");
  (* triple nest *)
  let b4 =
    parse_block
      "DO i = 1, 2\n  DO j = 1, 2\n    DO q = 1, 2\n      a = 1\n    ENDDO\n  ENDDO\nENDDO"
  in
  match L.tower_of_block b4 with
  | Some [ _; _; _ ] -> ()
  | _ -> Alcotest.fail "triple tower"

let t_split () =
  let b =
    parse_block
      "f(i) = 0\nDO j = 1, l(i)\n  a = 1\nENDDO\ns = s + 1"
  in
  match L.split_around_loop b with
  | Some ([ SAssign _ ], { L.kind = L.KDo _; _ }, [ SAssign _ ]) -> ()
  | _ -> Alcotest.fail "split shape"

let t_goto_restructure () =
  let b =
    parse_block
      {|
  i = 1
10 CONTINUE
  IF (i > k) GOTO 20
  s = s + i
  i = i + 1
  GOTO 10
20 CONTINUE
|}
  in
  let r = L.restructure_gotos b in
  (match r with
  | [ SAssign _; SWhile (EUn (Not, _), body) ] ->
      checki "while body size" 2 (List.length body)
  | _ -> Alcotest.failf "restructured shape: %s" (Pretty.block_to_string r));
  (* semantics preserved *)
  let setup ctx =
    Env.set ctx.Interp.env "k" (Values.VInt 5);
    Env.set ctx.Interp.env "s" (Values.VInt 0)
  in
  let c1 = Interp.run_block ~setup b and c2 = Interp.run_block ~setup r in
  checkb "same result" (Env.equal_on [ "s"; "i" ] c1.Interp.env c2.Interp.env)

let t_goto_nested () =
  (* a GOTO loop inside a structured loop restructures too *)
  let b =
    parse_block
      {|
  DO i = 1, 3
    j = 1
10  CONTINUE
    IF (j > i) GOTO 20
    s = s + j
    j = j + 1
    GOTO 10
20  CONTINUE
  ENDDO
|}
  in
  let r = L.restructure_gotos b in
  checkb "no gotos left"
    (not
       (Ast_util.fold_stmts
          (fun acc -> function SGoto _ | SCondGoto _ -> true | _ -> acc)
          false r));
  let setup ctx = Env.set ctx.Interp.env "s" (Values.VInt 0) in
  let c1 = Interp.run_block ~setup b and c2 = Interp.run_block ~setup r in
  checkb "same result" (Env.equal_on [ "s" ] c1.Interp.env c2.Interp.env)

let t_goto_untouched () =
  (* irregular jumps (exit from the middle) are left alone *)
  let b =
    parse_block
      {|
10 CONTINUE
  s = s + 1
  IF (s > 2) GOTO 20
  GOTO 10
20 CONTINUE
|}
  in
  let r = L.restructure_gotos b in
  checkb "unrecognized pattern kept"
    (Ast_util.fold_stmts
       (fun acc -> function SGoto _ -> true | _ -> acc)
       false r)

let t_induction () =
  let test = parse_expr "i <= k" in
  let body = parse_block "s = s + i\ni = i + 1" in
  checkb "induction found" (L.induction_candidates test body = [ "i" ]);
  let body2 = parse_block "i = i + 1\ni = i + 2" in
  checkb "double update rejected" (L.induction_candidates test body2 = [])

let suite =
  [
    case "side effects" t_side_effects;
    case "loop towers" t_towers;
    case "split around inner loop" t_split;
    case "goto restructuring" t_goto_restructure;
    case "nested goto restructuring" t_goto_nested;
    case "irregular gotos untouched" t_goto_untouched;
    case "induction variables" t_induction;
  ]
