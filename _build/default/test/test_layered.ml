(** Tests for the Figure 16/17 layered kernels on the SIMD VM (§5.3's
    implementation experience). *)

open Helpers
module L = Lf_kernels.Layered_src

let workload () =
  let mol = Lf_md.Workload.sod ~n:100 ~seed:31 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:7.0 in
  (mol, pl)

let p = 8
let nmax = 128

let reference mol pl = Lf_kernels.Nbforce_src.reference mol pl

let close a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs b)

(** Expected flattened call count: every lane walks all of its layer
    slots; a slot with an atom costs pCnt calls, an empty trailing slot
    still costs one (the lane is masked but the vector step issues). *)
let expected_flat_calls pl =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let lrs = 1 + ((n - 1) / p) in
  let worst = ref 0 in
  for lane = 0 to p - 1 do
    let sum = ref 0 in
    for ly = 1 to lrs do
      let a = lane + ((ly - 1) * p) in
      sum := !sum + (if a < n then max 1 pl.Lf_md.Pairlist.pcnt.(a) else 1)
    done;
    worst := max !worst !sum
  done;
  !worst

let t_flattened () =
  let mol, pl = workload () in
  let r = L.run_kernel (L.flattened ()) mol pl ~p ~nmax in
  checkb "forces match reference"
    (Array.for_all2 close r.L.forces (reference mol pl));
  checki "call count = per-lane walk (Eq. 1' over layer slots)"
    (expected_flat_calls pl) r.L.onef_calls

let t_unflattened_l2 () =
  let mol, pl = workload () in
  let r =
    L.run_kernel ~sweep:`MaxLrs (L.unflattened ()) mol pl ~p ~nmax
  in
  checkb "forces match reference"
    (Array.for_all2 close r.L.forces (reference mol pl));
  let maxlrs = 1 + ((nmax - 1) / p) in
  checki "L2 calls = maxPCnt x maxLrs"
    (Lf_md.Pairlist.max_pcnt pl * maxlrs)
    r.L.onef_calls

let t_unflattened_l1 () =
  let mol, pl = workload () in
  let r = L.run_kernel ~sweep:`Lrs (L.unflattened ()) mol pl ~p ~nmax in
  checkb "forces match reference"
    (Array.for_all2 close r.L.forces (reference mol pl));
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let lrs = 1 + ((n - 1) / p) in
  checki "L1 calls = maxPCnt x Lrs (Table 2's Lu)"
    (Lf_md.Pairlist.max_pcnt pl * lrs)
    r.L.onef_calls

let t_flattening_wins () =
  let mol, pl = workload () in
  let flat = L.run_kernel (L.flattened ()) mol pl ~p ~nmax in
  let unflat = L.run_kernel ~sweep:`Lrs (L.unflattened ()) mol pl ~p ~nmax in
  checkb "fewer layered force calls after flattening"
    (flat.L.onef_calls < unflat.L.onef_calls);
  (* agreement with the native kernel simulation of the same workload *)
  let m = Lf_simd.Machine.decmpp ~p in
  let native =
    Lf_kernels.Nbforce.run ~compute_forces:false Lf_kernels.Nbforce.L1 m mol
      pl ~nmax
  in
  checki "mini-Fortran L1 = native L1 step count"
    native.Lf_kernels.Nbforce.force_steps unflat.L.onef_calls

let t_nmax_effect () =
  (* doubling Nmax doubles the L2 sweep but leaves the flattened kernel
     untouched — §5.3, now on the actual mini-Fortran kernels *)
  let mol, pl = workload () in
  let l2 nm =
    (L.run_kernel ~sweep:`MaxLrs (L.unflattened ()) mol pl ~p ~nmax:nm)
      .L.onef_calls
  in
  let lf nm =
    (L.run_kernel (L.flattened ()) mol pl ~p ~nmax:nm).L.onef_calls
  in
  checki "L2 doubles" (2 * l2 128) (l2 256);
  checki "Lf unchanged" (lf 128) (lf 256)

let t_typechecks () =
  List.iter
    (fun prog ->
      let r =
        Lf_lang.Typecheck.check_program
          ~params:
            [ ("p", Lf_lang.Typecheck.Int); ("lrs", Lf_lang.Typecheck.Int) ]
          prog
      in
      checkb "layered kernel typechecks" (Lf_lang.Typecheck.ok r))
    [ L.unflattened (); L.flattened () ]

let suite =
  [
    case "flattened layered kernel (Figure 16)" t_flattened;
    case "unflattened all-layers kernel (L2)" t_unflattened_l2;
    case "unflattened layer-selecting kernel (L1)" t_unflattened_l1;
    case "flattening wins on the VM" t_flattening_wins;
    case "Nmax effect on the mini-Fortran kernels" t_nmax_effect;
    case "layered kernels typecheck" t_typechecks;
  ]
