(** Kernel tests: EXAMPLE traces against the paper's Figures 4 and 6, and
    the NBFORCE kernel family (counts, bounds, numerical agreement). *)

open Helpers
module E = Lf_kernels.Example_kernel
module K = Lf_kernels.Nbforce
module M = Lf_simd.Machine

let t_fig4_trace () =
  let t = E.paper_mimd () in
  checki "8 steps" 8 t.E.time;
  (* the exact trace of Figure 4 *)
  let i1 = Array.map (function Some (i, _) -> i | None -> 0) t.E.cells.(0) in
  let j1 = Array.map (function Some (_, j) -> j | None -> 0) t.E.cells.(0) in
  let i2 = Array.map (function Some (i, _) -> i | None -> 0) t.E.cells.(1) in
  let j2 = Array.map (function Some (_, j) -> j | None -> 0) t.E.cells.(1) in
  checkb "i1" (i1 = [| 1; 1; 1; 1; 2; 3; 3; 4 |]);
  checkb "j1" (j1 = [| 1; 2; 3; 4; 1; 1; 2; 1 |]);
  checkb "i2" (i2 = [| 1; 2; 2; 2; 3; 4; 4; 4 |]);
  checkb "j2" (j2 = [| 1; 1; 2; 3; 1; 1; 2; 3 |])

let t_fig6_trace () =
  let t = E.paper_simd () in
  checki "12 steps" 12 t.E.time;
  (* idle cells appear exactly where Figure 6 leaves blanks *)
  let idle p =
    Array.to_list t.E.cells.(p)
    |> List.mapi (fun i c -> (i + 1, c))
    |> List.filter_map (fun (i, c) -> if c = None then Some i else None)
  in
  checkb "processor 1 idles in the trailing group" (idle 0 = [ 6; 7; 11; 12 ]);
  checkb "processor 2 idles after its short rows" (idle 1 = [ 2; 3; 4; 9 ])

let t_flattened_trace () =
  let f = E.paper_flattened () and m = E.paper_mimd () in
  checkb "flattened schedule equals MIMD" (f.E.cells = m.E.cells)

let t_trace_generic () =
  (* uniform trip counts: SIMD and MIMD coincide *)
  let l = [| 2; 2; 2; 2 |] in
  let s = E.simd_unflattened_trace ~l ~p:2 and m = E.mimd_trace ~l ~p:2 in
  checki "uniform simd time" 4 s.E.time;
  checki "uniform mimd time" 4 m.E.time

let small_setup () =
  let mol = Lf_md.Workload.sod ~n:512 ~seed:9 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  (mol, pl)

let t_counts () =
  let mol, pl = small_setup () in
  let m = M.decmpp ~p:64 in
  let l1 = K.run K.L1 m mol pl ~nmax:512 in
  let l2 = K.run K.L2 m mol pl ~nmax:1024 in
  let lf = K.run K.Flat m mol pl ~nmax:1024 in
  checki "Lrs" 8 l1.K.lrs;
  checki "L1 sweeps Lrs layers" (Lf_md.Pairlist.max_pcnt pl * 8) l1.K.force_steps;
  checki "L2 sweeps maxLrs layers"
    (Lf_md.Pairlist.max_pcnt pl * 16)
    l2.K.force_steps;
  checki "flat steps equal Eq. 1' bound" (K.flat_steps_bound m pl)
    lf.K.force_steps;
  (* all variants do the same useful work *)
  checki "useful pairs L1" (Lf_md.Pairlist.n_pairs pl) l1.K.busy_lanes;
  checki "useful pairs L2" (Lf_md.Pairlist.n_pairs pl) l2.K.busy_lanes;
  checki "useful pairs flat" (Lf_md.Pairlist.n_pairs pl) lf.K.busy_lanes;
  checkb "flat does fewer force steps" (lf.K.force_steps < l1.K.force_steps);
  checkb "flat utilization strictly better"
    (K.utilization lf > K.utilization l1)

let t_forces_agree () =
  let mol, pl = small_setup () in
  let m = M.cm2 ~p:512 in
  let reference = Lf_md.Force.reference_owner_side mol pl in
  let close a b =
    Lf_md.Force.norm (Lf_md.Force.add a (Lf_md.Force.neg b))
    <= 1e-6 *. (1.0 +. Lf_md.Force.norm b)
  in
  List.iter
    (fun variant ->
      let r = K.run variant m mol pl ~nmax:1024 in
      checkb
        (Printf.sprintf "forces agree (%s)" (K.variant_to_string variant))
        (Array.for_all2 close r.K.forces reference))
    [ K.L1; K.L2; K.Flat ]

let t_sequential () =
  let mol, pl = small_setup () in
  let r = K.run_sequential M.sparc mol pl in
  checki "sequential steps = pairs" (Lf_md.Pairlist.n_pairs pl)
    r.K.force_steps

let t_flat_nmax_invariance () =
  let mol, pl = small_setup () in
  let m = M.decmpp ~p:64 in
  let a = K.run ~compute_forces:false K.Flat m mol pl ~nmax:512 in
  let b = K.run ~compute_forces:false K.Flat m mol pl ~nmax:8192 in
  checkb "flat time independent of Nmax" (a.K.time = b.K.time);
  let l2a = K.run ~compute_forces:false K.L2 m mol pl ~nmax:512 in
  let l2b = K.run ~compute_forces:false K.L2 m mol pl ~nmax:1024 in
  checkb "L2 time doubles with Nmax"
    (Float.abs ((l2b.K.time /. l2a.K.time) -. 2.0) < 1e-9)

let t_single_atom_lanes () =
  (* Gran >= N: each lane holds at most one atom; Lu = Lf = maxPCnt
     (the paper's Gran = 8192 row of Table 2) *)
  let mol = Lf_md.Workload.sod ~n:256 ~seed:9 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let m = M.decmpp ~p:256 in
  let l1 = K.run ~compute_forces:false K.L1 m mol pl ~nmax:256 in
  let lf = K.run ~compute_forces:false K.Flat m mol pl ~nmax:256 in
  checki "Lu = maxPCnt" (Lf_md.Pairlist.max_pcnt pl) l1.K.table2_count;
  checki "Lf = maxPCnt" (Lf_md.Pairlist.max_pcnt pl) lf.K.table2_count

let t_monotone_ratio () =
  (* the Table 2 trend: Lu/Lf grows as Gran shrinks *)
  let mol = Lf_md.Workload.sod ~n:1024 ~seed:9 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:8.0 in
  let ratio gran =
    let m = M.decmpp ~p:gran in
    let lu = K.run ~compute_forces:false K.L1 m mol pl ~nmax:1024 in
    let lf = K.run ~compute_forces:false K.Flat m mol pl ~nmax:1024 in
    float_of_int lu.K.table2_count /. float_of_int lf.K.table2_count
  in
  let r1024 = ratio 1024 and r256 = ratio 256 and r64 = ratio 64 in
  checkb "ratio 1 at one atom per lane" (Float.abs (r1024 -. 1.0) < 1e-9);
  checkb "ratio grows" (r64 > r256 && r256 > r1024);
  (* bounded by pCnt_max / pCnt_avg *)
  let s = Lf_md.Stats.of_pairlist pl in
  checkb "bounded by max/avg" (r64 <= s.Lf_md.Stats.ratio +. 1e-9)

let t_indirect_toggle () =
  (* with indirect addressing off, the flattened kernel follows the
     physical layout; blockwise then inherits the owner-side imbalance *)
  let mol, pl = small_setup () in
  let m = { (M.decmpp ~p:64) with M.layout = M.Blockwise } in
  let ind = K.run_flat ~compute_forces:false ~indirect:true m mol pl ~nmax:512 in
  let dir = K.run_flat ~compute_forces:false ~indirect:false m mol pl ~nmax:512 in
  checkb "blockwise without indirection is never faster"
    (dir.K.force_steps >= ind.K.force_steps);
  checki "bound tracks the toggle"
    (K.flat_steps_bound ~indirect:false m pl)
    dir.K.force_steps

let suite =
  [
    case "Figure 4 trace" t_fig4_trace;
    case "Figure 6 trace" t_fig6_trace;
    case "flattened equals MIMD schedule" t_flattened_trace;
    case "uniform workload traces" t_trace_generic;
    case "NBFORCE counts and bounds" t_counts;
    case "NBFORCE forces agree across variants" t_forces_agree;
    case "sequential kernel" t_sequential;
    case "Nmax invariance of Lf (§5.3)" t_flat_nmax_invariance;
    case "single-atom lanes (Table 2 last row)" t_single_atom_lanes;
    case "monotone Lu/Lf ratio (Table 2 trend)" t_monotone_ratio;
    case "indirect-addressing toggle" t_indirect_toggle;
  ]
