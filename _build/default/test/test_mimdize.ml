(** MIMD code-generation tests: the paper's Figure 2 (F77D) → Figure 3
    (F77_MIMD) derivation, executed on the MIMD simulator. *)

open Helpers
open Lf_lang
open Ast
module M = Lf_core.Mimdize

(** The paper's Figure 2: EXAMPLE with Fortran D data mapping. *)
let f77d_source =
  {|
PROGRAM example
  INTEGER k, lmax, x(k, lmax), l(k)
  DECOMPOSITION xd(k, lmax)
  DECOMPOSITION ld(k)
  ALIGN x WITH xd
  ALIGN l WITH ld
  DISTRIBUTE xd(BLOCK, *)
  DISTRIBUTE ld(BLOCK)
  DO i = 1, k
    DO j = 1, l(i)
      x(i, j) = i * j
    ENDDO
  ENDDO
END
|}

let mimdize ?(src = f77d_source) () =
  let prog = parse_program src in
  let fresh = Lf_core.Fresh.of_program prog in
  M.mimdize ~fresh ~p:(EInt 2) prog

let t_directives () =
  let prog = parse_program f77d_source in
  let d = M.distributed_arrays prog in
  checkb "x distributed block" (List.assoc_opt "x" d = Some Lf_core.Simdize.Block);
  checkb "l distributed block" (List.assoc_opt "l" d = Some Lf_core.Simdize.Block)

let t_shape () =
  match mimdize () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "block decomposition" (r.M.decomp = Lf_core.Simdize.Block);
      checkb "distributed arrays recorded"
        (List.sort compare r.M.distributed = [ "l"; "x" ]);
      (* the loop now runs over the local count K/P, as in Figure 3 *)
      (match
         List.find_opt
           (function SDo _ -> true | _ -> false)
           r.M.program.p_body
       with
      | Some (SDo (c, body)) ->
          checkb "local trip count" (c.d_hi = EBin (Div, EVar "k", EInt 2));
          (* value occurrences use the reconstructed global index *)
          (match body with
          | SAssign ({ lv_name = g; _ }, _) :: _ ->
              checkb "global index first" (g = "i_g")
          | _ -> Alcotest.fail "missing global-index statement");
          checkb "body multiplies global index"
            (Astring_contains.contains
               (Pretty.block_to_string body)
               "i_g * j")
      | _ -> Alcotest.fail "no loop")

(** Run the generated per-processor program on the MIMD simulator with
    block-sliced data and reassemble the result. *)
let t_execution () =
  let k = 8 and p = 2 in
  let per = k / p in
  let maxl = Array.fold_left max 1 paper_l in
  match mimdize () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let setup proc ctx =
        Env.set ctx.Interp.env "k" (Values.VInt k);
        Env.set ctx.Interp.env "lmax" (Values.VInt maxl);
        Env.set ctx.Interp.env M.myproc (Values.VInt (proc + 1));
        Env.set ctx.Interp.env "l"
          (Values.VArr
             (Values.AInt (Nd.of_array (Array.sub paper_l (proc * per) per))));
        Env.set ctx.Interp.env "x"
          (Values.VArr (Values.AInt (Nd.create [| per; maxl |] 0)))
      in
      let res = Lf_mimd.Mimd_vm.run ~p ~setup r.M.program in
      (* reassemble the distributed X and compare with the sequential run *)
      let reference = example_x () in
      Array.iteri
        (fun proc ctx ->
          match Env.find ctx.Interp.env "x" with
          | Values.VArr (Values.AInt slice) ->
              for i = 1 to per do
                for j = 1 to maxl do
                  checki
                    (Printf.sprintf "proc %d x(%d,%d)" proc i j)
                    (Nd.get reference [| (proc * per) + i; j |])
                    (Nd.get slice [| i; j |])
                done
              done
          | _ -> Alcotest.fail "x missing")
        res.Lf_mimd.Mimd_vm.contexts

let t_cyclic () =
  let src =
    {|
PROGRAM example
  INTEGER k, lmax, x(k, lmax), l(k)
  DECOMPOSITION xd(k, lmax)
  ALIGN x WITH xd
  ALIGN l WITH xd
  DISTRIBUTE xd(CYCLIC, *)
  DO i = 1, k
    DO j = 1, l(i)
      x(i, j) = i * j
    ENDDO
  ENDDO
END
|}
  in
  match mimdize ~src () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      checkb "cyclic decomposition" (r.M.decomp = Lf_core.Simdize.Cyclic);
      let k = 8 and p = 2 in
      let per = k / p in
      let maxl = Array.fold_left max 1 paper_l in
      let setup proc ctx =
        Env.set ctx.Interp.env "k" (Values.VInt k);
        Env.set ctx.Interp.env "lmax" (Values.VInt maxl);
        Env.set ctx.Interp.env M.myproc (Values.VInt (proc + 1));
        (* cyclic slices: local i <-> global proc+1 + (i-1)*p *)
        Env.set ctx.Interp.env "l"
          (Values.VArr
             (Values.AInt
                (Nd.of_array (Array.init per (fun i -> paper_l.(proc + (i * p)))))));
        Env.set ctx.Interp.env "x"
          (Values.VArr (Values.AInt (Nd.create [| per; maxl |] 0)))
      in
      let res = Lf_mimd.Mimd_vm.run ~p ~setup r.M.program in
      let reference = example_x () in
      Array.iteri
        (fun proc ctx ->
          match Env.find ctx.Interp.env "x" with
          | Values.VArr (Values.AInt slice) ->
              for i = 1 to per do
                for j = 1 to maxl do
                  checki
                    (Printf.sprintf "cyclic proc %d x(%d,%d)" proc i j)
                    (Nd.get reference [| proc + 1 + ((i - 1) * p); j |])
                    (Nd.get slice [| i; j |])
                done
              done
          | _ -> Alcotest.fail "x missing")
        res.Lf_mimd.Mimd_vm.contexts

let t_communication_rejected () =
  let src =
    {|
PROGRAM stencil
  INTEGER k, a(k)
  DECOMPOSITION ad(k)
  ALIGN a WITH ad
  DISTRIBUTE ad(BLOCK)
  DO i = 2, k
    DO j = 1, 2
      a(i) = a(i - 1) + j
    ENDDO
  ENDDO
END
|}
  in
  match mimdize ~src () with
  | Error e -> checkb "names communication" (Astring_contains.contains e "communication")
  | Ok _ -> Alcotest.fail "non-local reference must be rejected"

let t_mimd_then_flatten () =
  (* the two paths compose: the same F77D program flattens for SIMD and
     localizes for MIMD, and both agree with the sequential semantics *)
  let prog = parse_program f77d_source in
  let opts =
    { Lf_core.Pipeline.default_options with assume_inner_nonempty = true }
  in
  match Lf_core.Pipeline.flatten_program ~opts prog with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let reference = example_x () in
      let ctx =
        Interp.run
          ~params:
            [ ("k", Values.VInt 8); ("lmax", Values.VInt 4) ]
          ~setup:(fun ctx -> example_setup ctx)
          o.Lf_core.Pipeline.program
      in
      check int_nd "flattened F77D program agrees" reference (get_x ctx)

let suite =
  [
    case "directive interpretation" t_directives;
    case "Figure 3 shape" t_shape;
    case "block execution on the MIMD simulator" t_execution;
    case "cyclic execution" t_cyclic;
    case "communication-needing programs rejected" t_communication_rejected;
    case "F77D serves both targets" t_mimd_then_flatten;
  ]
