(** Typechecker tests: types, ranks, implicit rule, and the F90simd plural
    discipline — plus the meta-property that the transformation passes
    emit well-typed programs. *)

open Helpers
open Lf_lang
module T = Typecheck

let check_src ?funcs ?simd src =
  T.check_program ?funcs ?simd (parse_program src)

let errors ?funcs ?simd src = (check_src ?funcs ?simd src).T.errors
let ok ?funcs ?simd src = T.ok (check_src ?funcs ?simd src)

let has_error ?funcs ?simd src fragment =
  List.exists
    (fun d -> Astring_contains.contains d.T.message fragment)
    (errors ?funcs ?simd src)

let t_types () =
  checkb "well-typed program"
    (ok "PROGRAM p\n  INTEGER i, a(10)\n  REAL x\n  DO i = 1, 10\n    a(i) = i\n  ENDDO\n  x = a(3) + 0.5\nEND");
  checkb "logical arithmetic rejected"
    (has_error "PROGRAM p\n  LOGICAL m\n  INTEGER i\n  i = m + 1\nEND" "arithmetic");
  checkb "numeric condition rejected"
    (has_error "PROGRAM p\n  INTEGER i\n  IF (i + 1) THEN\n  ENDIF\nEND" "condition");
  checkb "narrowing rejected"
    (has_error "PROGRAM p\n  INTEGER i\n  i = 1.5\nEND" "assigning REAL");
  checkb "widening allowed"
    (ok "PROGRAM p\n  REAL x\n  INTEGER i\n  i = 2\n  x = i\nEND");
  checkb "logical comparison of numerics ok"
    (ok "PROGRAM p\n  LOGICAL m\n  INTEGER i\n  i = 3\n  m = i > 2\nEND")

let t_ranks () =
  checkb "scalar indexed rejected"
    (has_error "PROGRAM p\n  INTEGER i\n  i(3) = 1\nEND" "scalar but is indexed");
  checkb "wrong arity rejected"
    (has_error "PROGRAM p\n  INTEGER a(4,4)\n  a(1) = 0\nEND" "rank 2");
  checkb "logical subscript rejected"
    (has_error "PROGRAM p\n  INTEGER a(4)\n  LOGICAL m\n  a(m) = 0\nEND"
       "subscript");
  checkb "whole-array fill ok"
    (ok "PROGRAM p\n  REAL f(10)\n  f = 0\nEND");
  checkb "section read ok"
    (ok "PROGRAM p\n  INTEGER a(10), s\n  s = maxval(a(2:5))\nEND")

let t_implicit () =
  let r = check_src "PROGRAM p\n  i = 1\n  x = 2.5\nEND" in
  checkb "implicit program accepted" (T.ok r);
  checki "two warnings" 2 (List.length r.T.warnings);
  checkb "implicit REAL narrowing caught"
    (has_error "PROGRAM p\n  j = 1.5\nEND" "assigning REAL")

let t_loops () =
  checkb "real loop variable rejected"
    (has_error "PROGRAM p\n  REAL x\n  DO x = 1, 3\n  ENDDO\nEND"
       "loop variable");
  checkb "real bound rejected"
    (has_error "PROGRAM p\n  INTEGER i\n  DO i = 1, 2.5\n  ENDDO\nEND"
       "upper bound")

let t_plural_discipline () =
  checkb "the generated Figure 7 program typechecks"
    (let p = parse_program Lf_report.Experiments.example_source in
     let opts =
       {
         Lf_core.Pipeline.default_options with
         assume_inner_nonempty = true;
         target =
           Lf_core.Pipeline.Simd
             { decomp = Lf_core.Simdize.Block; p = Ast.EVar "p" };
       }
     in
     match Lf_core.Pipeline.flatten_program ~opts p with
     | Ok o ->
         T.ok
           (T.check_program ~params:[ ("p", T.Int); ("k", T.Int) ]
              o.Lf_core.Pipeline.program)
     | Error e -> Alcotest.fail e);
  checkb "plural into front-end scalar rejected"
    (has_error ~simd:true
       "PROGRAM p\n  PLURAL INTEGER i\n  INTEGER s\n  i = iproc\n  s = i\nEND"
       "front-end scalar");
  checkb "IF over plural rejected"
    (has_error ~simd:true
       "PROGRAM p\n  PLURAL INTEGER i\n  i = iproc\n  IF (i > 2) THEN\n  ENDIF\nEND"
       "use WHERE");
  checkb "plural WHILE rejected"
    (has_error ~simd:true
       "PROGRAM p\n  PLURAL INTEGER i\n  i = iproc\n  WHILE (i < 4)\n    i = i + 1\n  ENDWHILE\nEND"
       "WHILE ANY");
  checkb "WHILE ANY accepted"
    (ok ~simd:true
       "PROGRAM p\n  PLURAL INTEGER i\n  i = iproc\n  WHILE (any(i < 4))\n    WHERE (i < 4)\n      i = i + 1\n    ENDWHERE\n  ENDWHILE\nEND");
  checkb "plural DO bound rejected"
    (has_error ~simd:true
       "PROGRAM p\n  PLURAL INTEGER i\n  INTEGER j, l(8)\n  i = iproc\n  DO j = 1, l(i)\n  ENDDO\nEND"
       "MAXVAL");
  checkb "reduced bound accepted"
    (ok ~simd:true
       "PROGRAM p\n  PLURAL INTEGER i\n  INTEGER j, l(8)\n  i = iproc\n  DO j = 1, maxval(l(i))\n  ENDDO\nEND")

let t_functions () =
  checkb "registered function result type"
    (ok
       ~funcs:[ ("force", T.Real) ]
       "PROGRAM p\n  REAL f(4)\n  INTEGER i\n  i = 1\n  f(i) = f(i) + force(i, i)\nEND");
  let r =
    check_src "PROGRAM p\n  REAL x\n  x = mystery(1)\nEND"
  in
  checkb "unknown function warned, not errored"
    (T.ok r && r.T.warnings <> [])

let t_transform_preserves_typing () =
  (* flattening and naive SIMDization of NBFORCE both typecheck *)
  let prog = Lf_kernels.Nbforce_src.program () in
  let funcs = [ ("force", T.Real) ] in
  let params = [ ("n", T.Int); ("maxp", T.Int); ("p", T.Int) ] in
  checkb "source typechecks"
    (T.ok (T.check_program ~funcs ~params prog));
  List.iter
    (fun decomp ->
      let opts =
        {
          Lf_core.Pipeline.default_options with
          assume_inner_nonempty = true;
          target = Lf_core.Pipeline.Simd { decomp; p = Ast.EVar "p" };
        }
      in
      (match Lf_core.Pipeline.flatten_program ~opts prog with
      | Ok o ->
          let r = T.check_program ~funcs ~params o.Lf_core.Pipeline.program in
          checkb
            (Printf.sprintf "flattened SIMD (%s) typechecks"
               (Lf_core.Simdize.decomp_to_string decomp))
            (T.ok r)
      | Error e -> Alcotest.fail e);
      match Lf_core.Pipeline.simdize_program_naive ~opts prog with
      | Ok o ->
          checkb "naive SIMD typechecks"
            (T.ok (T.check_program ~funcs ~params o.Lf_core.Pipeline.program))
      | Error e -> Alcotest.fail e)
    [ Lf_core.Simdize.Block; Lf_core.Simdize.Cyclic ]

let suite =
  [
    case "types" t_types;
    case "ranks and subscripts" t_ranks;
    case "implicit declarations" t_implicit;
    case "loop headers" t_loops;
    case "plural discipline (F90simd)" t_plural_discipline;
    case "external functions" t_functions;
    case "transformations preserve typing" t_transform_preserves_typing;
  ]
