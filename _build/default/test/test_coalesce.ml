(** Loop-coalescing tests (the §7 comparison transformation). *)

open Helpers
open Lf_lang
open Ast
module C = Lf_core.Coalesce

let coalesce1 src =
  let b = parse_block src in
  let fresh = Lf_core.Fresh.of_block b in
  C.coalesce ~fresh (List.hd b)

let t_rectangular () =
  let src = "DO i = 1, n\n  DO j = 1, m\n    x(i, j) = i * 10 + j\n  ENDDO\nENDDO" in
  match coalesce1 src with
  | Error r -> Alcotest.failf "%a" C.pp_rejection r
  | Ok flat ->
      checki "single loop" 1 (Ast_util.loop_depth flat);
      let setup ctx =
        Env.set ctx.Interp.env "n" (Values.VInt 4);
        Env.set ctx.Interp.env "m" (Values.VInt 3);
        Env.set ctx.Interp.env "x"
          (Values.VArr (Values.AInt (Nd.create [| 4; 3 |] 0)))
      in
      let c1 = Interp.run_block ~setup (parse_block src) in
      let c2 = Interp.run_block ~setup flat in
      checkb "semantics" (Env.equal_on [ "x" ] c1.Interp.env c2.Interp.env)

let t_forall_result () =
  let src = "FORALL (i = 1:n)\n  FORALL (j = 1:m)\n    x(i, j) = i\n  ENDFORALL\nENDFORALL" in
  match coalesce1 src with
  | Ok [ SForall (c, _) ] ->
      checkb "product bound" (c.d_hi = EBin (Sub, EBin (Mul, EVar "n", EVar "m"), EInt 1))
  | Ok _ -> Alcotest.fail "expected a FORALL"
  | Error r -> Alcotest.failf "%a" C.pp_rejection r

let t_rejects_irregular () =
  (* the paper's EXAMPLE: inner bound l(i) varies with i *)
  match coalesce1 (Pretty.block_to_string (example_block ())) with
  | Error r ->
      checkb "names the reason"
        (Astring_contains.contains (Fmt.str "%a" C.pp_rejection r)
           "not rectangular")
  | Ok _ -> Alcotest.fail "EXAMPLE must be rejected"

let t_rejects_forms () =
  checkb "stride"
    (Result.is_error (coalesce1 "DO i = 1, n, 2\n  DO j = 1, m\n  ENDDO\nENDDO"));
  checkb "offset lower bound"
    (Result.is_error (coalesce1 "DO i = 2, n\n  DO j = 1, m\n  ENDDO\nENDDO"));
  checkb "pre-statement"
    (Result.is_error
       (coalesce1 "DO i = 1, n\n  s = 0\n  DO j = 1, m\n  ENDDO\nENDDO"));
  checkb "inner bound assigned in body"
    (Result.is_error
       (coalesce1 "DO i = 1, n\n  DO j = 1, m\n    m = m + 1\n  ENDDO\nENDDO"))

let t_flattening_handles_what_coalescing_cannot () =
  (* §7's point, executably: flattening succeeds exactly where coalescing
     gives up *)
  let b = example_block () in
  let fresh = Lf_core.Fresh.of_block b in
  checkb "coalescing rejects EXAMPLE"
    (Result.is_error (C.coalesce ~fresh (List.hd b)));
  let fresh2 = Lf_core.Fresh.of_block b in
  checkb "flattening accepts EXAMPLE"
    (match Lf_core.Normalize.of_nest ~fresh:fresh2 (List.hd b) with
    | Ok nest ->
        Result.is_ok
          (Lf_core.Flatten.flatten ~fresh:fresh2 ~assume_inner_nonempty:true
             Lf_core.Flatten.DoneTest nest)
    | Error _ -> false)

let prop_coalesce_semantics (n, m) =
  let src = "DO i = 1, n\n  DO j = 1, m\n    acc = acc + i * 100 + j\n  ENDDO\nENDDO" in
  let b = parse_block src in
  let fresh = Lf_core.Fresh.of_block b in
  match C.coalesce ~fresh (List.hd b) with
  | Error _ -> false
  | Ok flat ->
      let setup ctx =
        Env.set ctx.Interp.env "n" (Values.VInt n);
        Env.set ctx.Interp.env "m" (Values.VInt m);
        Env.set ctx.Interp.env "acc" (Values.VInt 0)
      in
      let c1 = Interp.run_block ~setup b in
      let c2 = Interp.run_block ~setup flat in
      Env.equal_on [ "acc" ] c1.Interp.env c2.Interp.env

let suite =
  [
    case "rectangular nest coalesces" t_rectangular;
    case "forall nests stay forall" t_forall_result;
    case "irregular nests rejected" t_rejects_irregular;
    case "form restrictions" t_rejects_forms;
    case "flattening vs coalescing (the §7 contrast)"
      t_flattening_handles_what_coalescing_cannot;
    qcheck_case ~count:100 "coalescing preserves semantics"
      QCheck.Gen.(pair (1 -- 8) (0 -- 6))
      prop_coalesce_semantics;
  ]
