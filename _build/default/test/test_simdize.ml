(** SIMDization tests: plural inference, control vectorization, iteration
    partitioning for both decompositions, and golden comparison against
    the paper's Figures 5, 7, and 15. *)

open Helpers
open Lf_lang
open Ast
module S = Lf_core.Simdize
module SS = S.SS

let t_plural_inference () =
  let b =
    parse_block
      {|
  i = iproc
  j = 1
  s = 0
  WHILE (i <= k)
    WHERE (j == l(i))
      i = i + p
      j = 1
    ELSEWHERE
      j = j + 1
    ENDWHERE
  ENDWHILE
|}
  in
  let plural = S.infer_plural ~seeds:[ "i" ] b in
  checkb "i plural" (SS.mem "i" plural);
  checkb "j plural (assigned under plural condition)" (SS.mem "j" plural);
  checkb "scalar s stays front-end" (not (SS.mem "s" plural));
  checkb "k stays front-end" (not (SS.mem "k" plural))

let t_reductions_are_scalar () =
  let b = parse_block "i = iproc\nm = maxval(l(i))\nDO j = 1, m\nENDDO" in
  let plural = S.infer_plural ~seeds:[ "i" ] b in
  checkb "maxval result is front-end" (not (SS.mem "m" plural));
  checkb "do var over reduction bound is front-end" (not (SS.mem "j" plural))

let t_expr_is_plural () =
  let set = SS.of_list [ "i" ] in
  checkb "var" (S.expr_is_plural set (parse_expr "i + 1"));
  checkb "gather" (S.expr_is_plural set (parse_expr "l(i)"));
  checkb "reduction collapses" (not (S.expr_is_plural set (parse_expr "any(i <= k)")));
  checkb "constant" (not (S.expr_is_plural set (parse_expr "k + 1")))

let t_vectorize_control () =
  let plural = SS.of_list [ "i"; "j" ] in
  let b = parse_block "IF (i > 0) THEN\n  j = j + 1\nENDIF" in
  (match S.vectorize_control plural b with
  | [ SWhere (_, [ _ ], []) ] -> ()
  | _ -> Alcotest.fail "plural IF becomes WHERE");
  let b2 = parse_block "WHILE (i <= k)\n  i = i + 1\nENDWHILE" in
  (match S.vectorize_control plural b2 with
  | [ SWhile (ECall ("any", [ _ ]), [ SWhere (_, [ _ ], []) ]) ] -> ()
  | _ -> Alcotest.fail "plural WHILE becomes WHILE ANY + WHERE");
  let b3 = parse_block "IF (k > 0) THEN\n  s = 1\nENDIF" in
  match S.vectorize_control plural b3 with
  | [ SIf _ ] -> ()
  | _ -> Alcotest.fail "front-end IF untouched"

let flatten_simdize decomp =
  let p = parse_program Lf_report.Experiments.example_source in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target = Lf_core.Pipeline.Simd { decomp; p = EVar "p" };
    }
  in
  match Lf_core.Pipeline.flatten_program ~opts p with
  | Ok o -> o
  | Error e -> Alcotest.fail e

let t_fig7_block () =
  (* block decomposition: Figure 7's shape — i = [1,5], K = [4,8] become
     the partitioned init and the latched per-processor bound *)
  let o = flatten_simdize S.Block in
  let body = o.Lf_core.Pipeline.program.p_body in
  let expected =
    parse_block
      {|
  i = 1 + (iproc - 1) * (k / p)
  i_last = iproc * (k / p)
  j = 1
  WHILE (any(i <= i_last))
    WHERE (i <= i_last)
      x(i, j) = i * j
      WHERE (j == l(i))
        i = i + 1
        j = 1
      ELSEWHERE
        j = j + 1
      ENDWHERE
    ENDWHERE
  ENDWHILE
|}
  in
  checkb "Figure 7 shape" (Ast.equal_block expected body);
  checkb "plural decls"
    (List.for_all
       (fun v ->
         List.exists
           (fun d -> d.dc_name = v && d.dc_plural)
           o.Lf_core.Pipeline.program.p_decls)
       [ "i"; "i_last"; "j" ]);
  checkb "x stays global"
    (List.exists
       (fun d -> d.dc_name = "x" && not d.dc_plural)
       o.Lf_core.Pipeline.program.p_decls)

let t_fig15_cyclic () =
  (* cyclic decomposition: Figure 15's At1 = At1 + P increment *)
  let o = flatten_simdize S.Cyclic in
  let body = o.Lf_core.Pipeline.program.p_body in
  let expected =
    parse_block
      {|
  i = 1 + (iproc - 1)
  j = 1
  WHILE (any(i <= k))
    WHERE (i <= k)
      x(i, j) = i * j
      WHERE (j == l(i))
        i = i + p
        j = 1
      ELSEWHERE
        j = j + 1
      ENDWHERE
    ENDWHERE
  ENDWHILE
|}
  in
  checkb "Figure 15 shape" (Ast.equal_block expected body)

let t_fig5_naive () =
  let p = parse_program Lf_report.Experiments.example_source in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      target = Lf_core.Pipeline.Simd { decomp = S.Block; p = EVar "p" };
    }
  in
  match Lf_core.Pipeline.simdize_program_naive ~opts p with
  | Error e -> Alcotest.fail e
  | Ok o -> (
      match o.Lf_core.Pipeline.program.p_body with
      | [ SDo (outer, outer_body) ] -> (
          checkb "uniform outer trip count"
            (outer.d_hi = EBin (Div, EVar "k", EVar "p"));
          match outer_body with
          | [ SAssign ({ lv_name = aux; _ }, _); SDo (inner, [ SWhere _ ]) ]
            ->
              checkb "aux induction introduced" (aux = "i_p");
              checkb "inner bound is maxval"
                (match inner.d_hi with
                | ECall ("maxval", [ _ ]) -> true
                | _ -> false)
          | _ -> Alcotest.fail "naive inner shape")
      | _ -> Alcotest.fail "naive outer shape")

let t_partition_init () =
  let init, last, step =
    S.partition_init S.Block ~p:(EInt 4) ~lo:(EInt 1) ~hi:(EInt 16) "i"
  in
  checki "one init stmt" 1 (List.length init);
  checkb "block step 1" (step = EInt 1);
  (* evaluate per processor: chunk = 4 *)
  let eval_lane e lane =
    let ctx = Interp.create () in
    Env.set ctx.Interp.env "iproc" (Values.VInt lane);
    Values.as_int (Interp.eval ctx e)
  in
  (match List.hd init with
  | SAssign (_, e) ->
      checki "lane 1 start" 1 (eval_lane e 1);
      checki "lane 4 start" 13 (eval_lane e 4)
  | _ -> Alcotest.fail "init shape");
  checki "lane 1 last" 4 (eval_lane last 1);
  checki "lane 4 last" 16 (eval_lane last 4);
  let init_c, last_c, step_c =
    S.partition_init S.Cyclic ~p:(EInt 4) ~lo:(EInt 1) ~hi:(EInt 16) "i"
  in
  (match List.hd init_c with
  | SAssign (_, e) ->
      checki "cyclic lane 3 start" 3 (eval_lane e 3)
  | _ -> Alcotest.fail "cyclic init shape");
  checkb "cyclic keeps global bound" (last_c = EInt 16);
  checkb "cyclic step is P" (step_c = EInt 4)

let t_nondivisible () =
  (* K = 7 atoms on 2 lanes: the naive SIMDization must guard the ragged
     last chunk (paper assumes divisibility "for simplicity"; we cover the
     general case) *)
  let b =
    parse_block
      "DO i = 1, 7\n  DO j = 1, l(i)\n    x(i, j) = i * j\n  ENDDO\nENDDO"
  in
  let fresh = Lf_core.Fresh.of_block b in
  match
    S.simdize_nest ~fresh ~decomp:S.Block ~p:(EInt 2) ~divisible:false
      (List.hd b)
  with
  | Error e -> Alcotest.fail e
  | Ok ns ->
      let l_data = [| 2; 1; 3; 1; 2; 1; 2 |] in
      let reference =
        let setup ctx =
          Env.set ctx.Interp.env "l"
            (Values.VArr (Values.AInt (Nd.of_array l_data)));
          Env.set ctx.Interp.env "x"
            (Values.VArr (Values.AInt (Nd.create [| 7; 3 |] 0)))
        in
        let c = Interp.run_block ~setup b in
        Env.find c.Interp.env "x"
      in
      let vm =
        Lf_simd.Vm.run ~p:2
          ~setup:(fun vm ->
            Lf_simd.Vm.bind_global vm "l"
              (Values.AInt (Nd.of_array l_data));
            Lf_simd.Vm.bind_global vm "x"
              (Values.AInt (Nd.create [| 7; 3 |] 0)))
          (Ast.program "nondiv" ns.S.ns_block)
      in
      checkb "ragged iteration space handled"
        (Values.equal_value reference
           (Values.VArr (Lf_simd.Vm.read_global vm "x")))

let t_reduction_detection () =
  let body =
    parse_block
      "acc = acc + i * j\nx(i, j) = i\ns = s + a(i)\nt = s + 1"
  in
  let cands = S.sum_reduction_candidates ~exclude:[] body in
  checkb "acc detected" (List.mem "acc" cands);
  checkb "s rejected (read by t)" (not (List.mem "s" cands));
  (* both operand orders *)
  let body2 = parse_block "acc = 1 + acc" in
  checkb "commuted form" (S.sum_reduction_candidates ~exclude:[] body2 = [ "acc" ]);
  (* self-referencing increment is not a reduction of itself *)
  let body3 = parse_block "acc = acc + acc" in
  checkb "self-reference rejected"
    (S.sum_reduction_candidates ~exclude:[] body3 = []);
  (* a non-add update disqualifies *)
  let body4 = parse_block "acc = acc + i\nacc = 0" in
  checkb "reinitialization disqualifies"
    (S.sum_reduction_candidates ~exclude:[] body4 = []);
  checkb "exclusion honored"
    (S.sum_reduction_candidates ~exclude:[ "acc" ] body = [])

let t_reduction_lowering () =
  let b = parse_block "i = 1\nWHILE (i <= k)\n  acc = acc + i\n  i = i + 1\nENDWHILE" in
  let fresh = Lf_core.Fresh.of_block b in
  let b', pairs = S.lower_sum_reductions ~fresh [ "acc" ] b in
  checkb "pair recorded" (pairs = [ ("acc", "acc_p") ]);
  let setup ctx =
    Env.set ctx.Interp.env "k" (Values.VInt 5);
    Env.set ctx.Interp.env "acc" (Values.VInt 100)
  in
  let c1 = Interp.run_block ~setup b in
  let c2 = Interp.run_block ~setup b' in
  checkb "lowered form preserves the total (sequentially)"
    (Env.equal_on [ "acc" ] c1.Interp.env c2.Interp.env)

let suite =
  [
    case "plural inference" t_plural_inference;
    case "sum-reduction detection" t_reduction_detection;
    case "sum-reduction lowering" t_reduction_lowering;
    case "non-divisible iteration space" t_nondivisible;
    case "reductions collapse plurality" t_reductions_are_scalar;
    case "expression plurality" t_expr_is_plural;
    case "control vectorization" t_vectorize_control;
    case "Figure 7 (block) golden" t_fig7_block;
    case "Figure 15 (cyclic) golden" t_fig15_cyclic;
    case "Figure 5 (naive) structure" t_fig5_naive;
    case "partition arithmetic" t_partition_init;
  ]
