(** Layout tests: coordinate round-trips and exact partitioning, for both
    the cut-and-stack (DECmpp) and blockwise (CM-2) layouts. *)

open Helpers
module L = Lf_simd.Layout
module M = Lf_simd.Machine

let t_cut_and_stack () =
  (* gran 4, n 10: layers of 4 *)
  let c = L.to_coords M.Cut_and_stack ~gran:4 ~n:10 6 in
  checki "lane" 2 c.L.lane;
  checki "layer" 2 c.L.layer;
  checkb "first layer is 1..gran"
    (List.for_all
       (fun g -> (L.to_coords M.Cut_and_stack ~gran:4 ~n:10 g).L.layer = 1)
       [ 1; 2; 3; 4 ])

let t_blockwise () =
  (* gran 4, n 10: lrs = 3, lane q owns 3 consecutive elements *)
  checki "layers" 3 (L.layers ~gran:4 ~n:10);
  let c = L.to_coords M.Blockwise ~gran:4 ~n:10 4 in
  checki "lane of 4" 2 c.L.lane;
  checki "layer of 4" 1 c.L.layer;
  checkb "lane 1 owns 1..3"
    (L.owned M.Blockwise ~gran:4 ~n:10 1 = [ 1; 2; 3 ])

let t_roundtrip () =
  List.iter
    (fun style ->
      List.iter
        (fun (gran, n) ->
          for g = 1 to n do
            let c = L.to_coords style ~gran ~n g in
            checkb "lane range" (c.L.lane >= 1 && c.L.lane <= gran);
            checkb "layer range"
              (c.L.layer >= 1 && c.L.layer <= L.layers ~gran ~n);
            match L.of_coords style ~gran ~n c with
            | Some g' -> checki "roundtrip" g g'
            | None -> Alcotest.fail "coords of valid index must map back"
          done)
        [ (4, 10); (8, 8); (3, 17); (16, 5) ])
    [ M.Cut_and_stack; M.Blockwise ]

let prop_partition (style, gran, n) =
  let parts = L.partition style ~gran ~n in
  let all = List.concat (Array.to_list parts) in
  List.sort_uniq compare all = List.init n (fun i -> i + 1)
  && List.length all = n

let partition_gen =
  QCheck.Gen.(
    let* style = oneofl [ M.Cut_and_stack; M.Blockwise ] in
    let* gran = 1 -- 20 in
    let* n = 0 -- 100 in
    return (style, gran, n))

let t_machine_layers () =
  let cm2 = M.cm2 ~p:8192 in
  checki "CM-2 gran" 1024 cm2.M.gran;
  checki "Lrs for SOD on CM-2 8192" 7 (M.layers cm2 ~n:6968);
  let dm = M.decmpp ~p:8192 in
  checki "DECmpp gran" 8192 dm.M.gran;
  checki "Lrs for SOD on DECmpp 8192" 1 (M.layers dm ~n:6968);
  (* the paper's example: Gran = 128, N = 6968 -> Lrs = 55 *)
  checki "paper's Lrs example" 55 (M.layers (M.cm2 ~p:1024) ~n:6968);
  checki "paper's maxLrs example" 64 (M.layers (M.cm2 ~p:1024) ~n:8192)

let suite =
  [
    case "cut-and-stack coordinates" t_cut_and_stack;
    case "blockwise coordinates" t_blockwise;
    case "coordinate round-trips" t_roundtrip;
    case "machine layer counts (paper §5.3)" t_machine_layers;
    qcheck_case ~count:200 "partitions are exact" partition_gen
      prop_partition;
  ]
