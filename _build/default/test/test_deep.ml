(** Deep (multi-level) flattening tests — the paper's §4 extension to
    "deeper loop nests". *)

open Helpers
open Lf_lang
open Ast
module F = Lf_core.Flatten

let triple_src =
  {|
  DO i = 1, k
    DO j = 1, l(i)
      DO q = 1, m(j)
        x(i, j) = x(i, j) + q
        acc = acc + 1
      ENDDO
    ENDDO
  ENDDO
|}

let setup ctx =
  Env.set ctx.Interp.env "k" (Values.VInt 4);
  Env.set ctx.Interp.env "acc" (Values.VInt 0);
  Env.set ctx.Interp.env "l"
    (Values.VArr (Values.AInt (Nd.of_array [| 3; 1; 2; 1 |])));
  Env.set ctx.Interp.env "m"
    (Values.VArr (Values.AInt (Nd.of_array [| 2; 1; 3 |])));
  Env.set ctx.Interp.env "x"
    (Values.VArr (Values.AInt (Nd.create [| 4; 3 |] 0)))

let flatten_triple variant =
  let b = parse_block triple_src in
  let fresh = Lf_core.Fresh.of_block b in
  F.flatten_deep ~fresh ~assume_inner_nonempty:true ?variant (List.hd b)

let t_collapses_to_one_loop () =
  match flatten_triple None with
  | Error r -> Alcotest.failf "%a" F.pp_rejection r
  | Ok (b, variants) ->
      checki "two flattening steps" 2 (List.length variants);
      checki "single loop remains" 1 (Ast_util.loop_depth b);
      (* the innermost pair admits the done-test form; the composed outer
         step has no derivable done-test and falls back to Fig. 11 *)
      checkb "variants" (variants = [ F.Optimized; F.DoneTest ])

let t_semantics () =
  List.iter
    (fun variant ->
      match flatten_triple variant with
      | Error r -> Alcotest.failf "%a" F.pp_rejection r
      | Ok (flat, _) ->
          let c1 = Interp.run_block ~setup (parse_block triple_src) in
          let c2 = Interp.run_block ~setup flat in
          checkb
            (match variant with
            | Some v -> F.variant_to_string v
            | None -> "auto")
            (Env.equal_on [ "x"; "acc" ] c1.Interp.env c2.Interp.env))
    [ Some F.General; Some F.Optimized; None ]

let t_depth_four () =
  let src =
    {|
  DO i = 1, 2
    DO j = 1, 2
      DO q = 1, j
        DO r = 1, q
          acc = acc + i * 1000 + j * 100 + q * 10 + r
        ENDDO
      ENDDO
    ENDDO
  ENDDO
|}
  in
  let b = parse_block src in
  let fresh = Lf_core.Fresh.of_block b in
  match F.flatten_deep ~fresh ~assume_inner_nonempty:true (List.hd b) with
  | Error r -> Alcotest.failf "%a" F.pp_rejection r
  | Ok (flat, variants) ->
      checki "three steps" 3 (List.length variants);
      checki "single loop" 1 (Ast_util.loop_depth flat);
      let setup ctx = Env.set ctx.Interp.env "acc" (Values.VInt 0) in
      let c1 = Interp.run_block ~setup b in
      let c2 = Interp.run_block ~setup flat in
      checkb "depth-4 semantics"
        (Env.equal_on [ "acc" ] c1.Interp.env c2.Interp.env)

let t_depth_one () =
  let b = parse_block "DO i = 1, 3\n  acc = acc + i\nENDDO" in
  let fresh = Lf_core.Fresh.of_block b in
  match F.flatten_deep ~fresh (List.hd b) with
  | Ok ([ SDo _ ], []) -> ()
  | Ok _ -> Alcotest.fail "depth-1 tower must be unchanged"
  | Error r -> Alcotest.failf "%a" F.pp_rejection r

let t_pipeline_deep () =
  let src =
    Printf.sprintf
      "PROGRAM p\n  INTEGER k, x(4,3), l(4), m(3)\n%s\nEND" triple_src
  in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      (* acc is a reduction: sequential flattening preserves its exact
         order, so assert legality instead of proving independence *)
      trusted_parallel = true;
      deep = true;
    }
  in
  match Lf_core.Pipeline.flatten_program ~opts (parse_program src) with
  | Error e -> Alcotest.fail e
  | Ok o ->
      checki "program body has one loop" 1
        (Ast_util.loop_depth o.Lf_core.Pipeline.program.p_body);
      let c1 =
        Interp.run ~params:[ ("k", Values.VInt 4) ]
          ~setup:(fun ctx -> setup ctx)
          (parse_program src)
      in
      let c2 =
        Interp.run ~params:[ ("k", Values.VInt 4) ]
          ~setup:(fun ctx -> setup ctx)
          o.Lf_core.Pipeline.program
      in
      checkb "pipeline deep semantics"
        (Env.equal_on [ "x"; "acc" ] c1.Interp.env c2.Interp.env)

let t_deep_simd () =
  (* deep flatten + SIMDize + run on the VM *)
  let src =
    Printf.sprintf
      "PROGRAM p\n  INTEGER k, x(4,3), l(4), m(3)\n%s\nEND" triple_src
  in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      trusted_parallel = true;
      deep = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Block; p = Ast.EInt 2 };
    }
  in
  match Lf_core.Pipeline.flatten_program ~opts (parse_program src) with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let reference =
        let c = Interp.run_block ~setup (parse_block triple_src) in
        Env.find c.Interp.env "x"
      in
      let vm =
        Lf_simd.Vm.run ~p:2
          ~setup:(fun vm ->
            Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 2);
            Lf_simd.Vm.bind_scalar vm "k" (Values.VInt 4);
            Lf_simd.Vm.bind_global vm "l"
              (Values.AInt (Nd.of_array [| 3; 1; 2; 1 |]));
            Lf_simd.Vm.bind_global vm "m"
              (Values.AInt (Nd.of_array [| 2; 1; 3 |]));
            Lf_simd.Vm.bind_global vm "x" (Values.AInt (Nd.create [| 4; 3 |] 0)))
          o.Lf_core.Pipeline.program
      in
      checkb "deep SIMD result"
        (Values.equal_value reference
           (Values.VArr (Lf_simd.Vm.read_global vm "x")))

(* random depth-3 nests *)
let deep_gen =
  QCheck.Gen.(
    let* k = 1 -- 4 in
    let* l = array_size (return k) (1 -- 3) in
    let maxl = Array.fold_left max 1 l in
    let* m = array_size (return maxl) (1 -- 3) in
    return (k, l, m))

let prop_deep_random (k, l, m) =
  let b = parse_block triple_src in
  let fresh = Lf_core.Fresh.of_block b in
  let setup ctx =
    Env.set ctx.Interp.env "k" (Values.VInt k);
    Env.set ctx.Interp.env "acc" (Values.VInt 0);
    Env.set ctx.Interp.env "l" (Values.VArr (Values.AInt (Nd.of_array l)));
    Env.set ctx.Interp.env "m" (Values.VArr (Values.AInt (Nd.of_array m)));
    Env.set ctx.Interp.env "x"
      (Values.VArr
         (Values.AInt (Nd.create [| k; Array.fold_left max 1 l |] 0)))
  in
  match F.flatten_deep ~fresh ~assume_inner_nonempty:true (List.hd b) with
  | Error _ -> false
  | Ok (flat, _) ->
      let c1 = Interp.run_block ~setup b in
      let c2 = Interp.run_block ~setup flat in
      Env.equal_on [ "x"; "acc" ] c1.Interp.env c2.Interp.env

let suite =
  [
    case "triple nest collapses to one loop" t_collapses_to_one_loop;
    case "triple nest semantics (all variants)" t_semantics;
    case "depth-4 nest" t_depth_four;
    case "depth-1 tower unchanged" t_depth_one;
    case "pipeline deep option" t_pipeline_deep;
    case "deep flatten + SIMDize" t_deep_simd;
    qcheck_case ~count:100 "random deep nests preserve semantics" deep_gen
      prop_deep_random;
  ]
