(** QCheck generators for random AST terms.

    Two flavours:
    - [expr] / [stmt] / [block]: arbitrary well-formed syntax, for
      parser/printer round-trip properties;
    - [int_expr_closed] and [nest]: {e executable} terms over a known
      environment, for semantic-preservation properties (simplifier,
      normalization, flattening). *)

open Lf_lang
open Lf_lang.Ast
open QCheck.Gen

let ident = oneofl [ "a"; "b"; "c"; "i"; "j"; "k"; "n"; "x"; "l" ]
let label = map string_of_int (1 -- 99)

let rec expr_sized n =
  if n <= 0 then
    oneof
      [
        map (fun i -> EInt i) (0 -- 9);
        map (fun v -> EVar v) ident;
        return (EBool true);
        return (EBool false);
      ]
  else
    let sub = expr_sized (n / 2) in
    frequency
      [
        (3, map2 (fun a b -> EBin (Add, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Mul, a, b)) sub sub);
        (2, map2 (fun a b -> EBin (Sub, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Le, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Lt, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (Eq, a, b)) sub sub);
        (1, map2 (fun a b -> EBin (And, EBin (Le, a, b), EBin (Ge, a, b))) sub sub);
        (1, map (fun a -> EUn (Neg, a)) sub);
        (1, map2 (fun v a -> EIdx (v, [ a ])) ident sub);
        (1, map2 (fun v (a, b) -> EIdx (v, [ a; b ])) ident (pair sub sub));
        (1, map2 (fun a b -> ECall ("max", [ a; b ])) sub sub);
      ]

let expr = expr_sized 4

let lvalue =
  oneof
    [
      map (fun v -> { lv_name = v; lv_index = [] }) ident;
      map2 (fun v e -> { lv_name = v; lv_index = [ e ] }) ident expr;
    ]

let rec stmt_sized n =
  if n <= 0 then map2 (fun l e -> SAssign (l, e)) lvalue expr
  else
    let blk = block_sized (n / 2) in
    frequency
      [
        (4, map2 (fun l e -> SAssign (l, e)) lvalue expr);
        (2, map3 (fun c t f -> SIf (c, t, f)) expr blk blk);
        (1, map3 (fun c t f -> SWhere (c, t, f)) expr blk blk);
        ( 1,
          map3
            (fun v (lo, hi) b -> SDo (do_control v lo hi, b))
            ident (pair expr expr) blk );
        ( 1,
          map3
            (fun v (lo, hi) b -> SForall (do_control v lo hi, b))
            ident (pair expr expr) blk );
        (1, map2 (fun c b -> SWhile (c, b)) expr blk);
        (1, map2 (fun c b -> SDoWhile (b, c)) expr blk);
        (1, map2 (fun f args -> SCall (f, args)) ident (list_size (0 -- 2) expr));
      ]

and block_sized n = list_size (0 -- 3) (stmt_sized n)

let stmt = stmt_sized 3
let block = block_sized 3

(* ------------------------------------------------------------------ *)
(* Executable nests for semantic properties                            *)
(* ------------------------------------------------------------------ *)

(** A random two-level loop nest in the supported class, together with the
    environment setup and the list of observable variables.  The inner
    bound reads the [l] array (indexed by the outer variable), the body
    writes [x(i, j)] and a scalar accumulator [acc]. *)
type exec_nest = {
  src_block : block;
  k : int;
  l : int array;
  inner_nonempty : bool;
}

let exec_nest_gen =
  let* k = 1 -- 6 in
  let* l = array_size (return k) (0 -- 4) in
  let* nonempty = bool in
  let l = if nonempty then Array.map (max 1) l else l in
  let* body_kind = 0 -- 2 in
  let body =
    match body_kind with
    | 0 ->
        [ SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
             EBin (Mul, EVar "i", EVar "j")) ]
    | 1 ->
        [
          SAssign ({ lv_name = "acc"; lv_index = [] },
            EBin (Add, EVar "acc", EBin (Add, EVar "i", EVar "j")));
          SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
            EVar "acc");
        ]
    | _ ->
        [
          SIf
            ( EBin (Eq, EBin (Mod, EBin (Add, EVar "i", EVar "j"), EInt 2), EInt 0),
              [ SAssign ({ lv_name = "x"; lv_index = [ EVar "i"; EVar "j" ] },
                  EBin (Add, EVar "i", EVar "j")) ],
              [ SAssign ({ lv_name = "acc"; lv_index = [] },
                  EBin (Add, EVar "acc", EInt 1)) ] );
        ]
  in
  let* outer_while = bool in
  let* inner_while = bool in
  let inner =
    if inner_while then
      [ Ast.assign "j" (EInt 1);
        SWhile
          ( EBin (Le, EVar "j", EIdx ("l", [ EVar "i" ])),
            body @ [ Ast.assign "j" (EBin (Add, EVar "j", EInt 1)) ] ) ]
    else
      [ SDo (do_control "j" (EInt 1) (EIdx ("l", [ EVar "i" ])), body) ]
  in
  let nest =
    if outer_while then
      [ Ast.assign "i" (EInt 1);
        SWhile
          ( EBin (Le, EVar "i", EVar "k"),
            inner @ [ Ast.assign "i" (EBin (Add, EVar "i", EInt 1)) ] ) ]
    else [ SDo (do_control "i" (EInt 1) (EVar "k"), inner) ]
  in
  return { src_block = nest; k; l; inner_nonempty = nonempty }

let exec_setup (en : exec_nest) ctx =
  let maxl = Array.fold_left max 1 en.l in
  Env.set ctx.Interp.env "k" (Values.VInt en.k);
  Env.set ctx.Interp.env "acc" (Values.VInt 0);
  Env.set ctx.Interp.env "l" (Values.VArr (Values.AInt (Nd.of_array en.l)));
  Env.set ctx.Interp.env "x"
    (Values.VArr (Values.AInt (Nd.create [| en.k; maxl |] 0)))

let exec_observables = [ "x"; "acc" ]
