(** Pretty-printer tests: golden output and the parse/print round-trip
    property over random ASTs. *)

open Helpers
open Lf_lang
open Ast

let t_expr_golden () =
  let s e = Pretty.expr_to_string e in
  checks "precedence parens" "(a + b) * c"
    (s (EBin (Mul, EBin (Add, EVar "a", EVar "b"), EVar "c")));
  checks "no redundant parens" "a + b * c"
    (s (EBin (Add, EVar "a", EBin (Mul, EVar "b", EVar "c"))));
  checks "left-assoc sub needs parens on right" "a - (b - c)"
    (s (EBin (Sub, EVar "a", EBin (Sub, EVar "b", EVar "c"))));
  checks "not" ".NOT. a" (s (EUn (Not, EVar "a")));
  checks "index" "x(i, j)" (s (EIdx ("x", [ EVar "i"; EVar "j" ])));
  checks "range index" "l(1:4)" (s (EIdx ("l", [ ERange (EInt 1, EInt 4) ])));
  checks "mod as function" "mod(a, 2)"
    (s (EBin (Mod, EVar "a", EInt 2)))

let t_block_golden () =
  let b =
    [
      SDo
        ( do_control "i" (EInt 1) (EVar "k"),
          [ SWhere (EVar "m", [ Ast.assign "a" (EInt 1) ], [ Ast.assign "a" (EInt 2) ]) ] );
    ]
  in
  checks "block layout"
    "DO i = 1, k\n\
    \  WHERE (m)\n\
    \    a = 1\n\
    \  ELSEWHERE\n\
    \    a = 2\n\
    \  ENDWHERE\n\
     ENDDO"
    (Pretty.block_to_string b)

let t_roundtrip_example () =
  let p = parse_program Lf_report.Experiments.example_source in
  let p2 = parse_program (Pretty.program_to_string p) in
  checkb "program roundtrip" (Ast.equal_program p p2)

let t_roundtrip_nbforce () =
  let p = Lf_kernels.Nbforce_src.program () in
  let p2 = parse_program (Pretty.program_to_string p) in
  checkb "NBFORCE roundtrip" (Ast.equal_program p p2)

let t_roundtrip_transformed () =
  (* the flattened + SIMDized outputs must themselves round-trip *)
  let p = parse_program Lf_report.Experiments.example_source in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Cyclic; p = EVar "p" };
    }
  in
  match Lf_core.Pipeline.flatten_program ~opts p with
  | Error e -> Alcotest.fail e
  | Ok o ->
      let txt = Pretty.program_to_string o.Lf_core.Pipeline.program in
      let p2 = parse_program txt in
      checkb "transformed roundtrip"
        (Ast.equal_program o.Lf_core.Pipeline.program p2)

let prop_roundtrip_block (b : block) =
  let txt = Pretty.block_to_string b in
  match Parser.block_of_string txt with
  | b2 -> Ast.equal_block b b2
  | exception e ->
      QCheck.Test.fail_reportf "did not re-parse: %s@.%s"
        (Printexc.to_string e) txt

let suite =
  [
    case "expression golden output" t_expr_golden;
    case "block golden output" t_block_golden;
    case "EXAMPLE round-trip" t_roundtrip_example;
    case "NBFORCE round-trip" t_roundtrip_nbforce;
    case "transformed-program round-trip" t_roundtrip_transformed;
    qcheck_case ~count:500 "random block round-trip" Gen.block
      prop_roundtrip_block;
  ]
