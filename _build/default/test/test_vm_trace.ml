(** Cross-validation of the paper's trace figures against actual VM
    execution: observing the body statement's activity mask while the
    compiled EXAMPLE runs reproduces Figures 4/6 cell for cell. *)

open Helpers
open Lf_lang
open Ast
module E = Lf_kernels.Example_kernel

(** Run a SIMDized EXAMPLE program on a 2-lane VM, recording, at every
    execution of the body statement (the assignment to x), each active
    lane's (local i, j). *)
let record_body_trace prog =
  let trace : (int * int) option list list ref = ref [] in
  let vm = Lf_simd.Vm.create ~p:2 () in
  Lf_simd.Vm.bind_scalar vm "k" (Values.VInt 8);
  Lf_simd.Vm.bind_scalar vm "p" (Values.VInt 2);
  Lf_simd.Vm.bind_global vm "l" (Values.AInt (Nd.of_array paper_l));
  Lf_simd.Vm.bind_global vm "x" (Values.AInt (Nd.create [| 8; 4 |] 0));
  Lf_simd.Vm.set_observer vm (fun vm ~mask s ->
      match s with
      | SAssign ({ lv_name = "x"; _ }, _) ->
          let lane_val name lane =
            match Lf_simd.Vm.find vm name with
            | Lf_simd.Vm.VPlural vs -> Values.as_int vs.(lane)
            | Lf_simd.Vm.VScalar r -> Values.as_int !r
            | _ -> Alcotest.fail (name ^ " has unexpected shape")
          in
          let row =
            List.init 2 (fun lane ->
                if mask.(lane) then
                  let gi =
                    (* the flattened code uses the global index i; the
                       naive code uses the auxiliary i_p *)
                    if Lf_simd.Vm.find_opt vm "i_p" <> None then
                      lane_val "i_p" lane
                    else lane_val "i" lane
                  in
                  Some (gi - (lane * 4), lane_val "j" lane)
                else None)
          in
          trace := row :: !trace
      | _ -> ());
  Lf_simd.Vm.declare vm prog.p_decls;
  Lf_simd.Vm.exec_block vm ~mask:(Lf_simd.Vm.full_mask vm) prog.p_body;
  List.rev !trace

let cells_of_trace rows =
  let n = List.length rows in
  Array.init 2 (fun lane ->
      Array.init n (fun t -> List.nth (List.nth rows t) lane))

let derive target =
  let p = Parser.program_of_string Lf_report.Experiments.example_source in
  let opts =
    {
      Lf_core.Pipeline.default_options with
      assume_inner_nonempty = true;
      target =
        Lf_core.Pipeline.Simd
          { decomp = Lf_core.Simdize.Block; p = EVar "p" };
    }
  in
  match
    if target = `Flat then Lf_core.Pipeline.flatten_program ~opts p
    else Lf_core.Pipeline.simdize_program_naive ~opts p
  with
  | Ok o -> o.Lf_core.Pipeline.program
  | Error e -> Alcotest.fail e

let t_flattened_vm_trace () =
  let rows = record_body_trace (derive `Flat) in
  checki "8 body steps" 8 (List.length rows);
  let cells = cells_of_trace rows in
  let expected = (E.paper_flattened ()).E.cells in
  checkb "VM occupancy equals Figure 4's schedule" (cells = expected)

let t_naive_vm_trace () =
  let rows = record_body_trace (derive `Naive) in
  checki "12 body steps" 12 (List.length rows);
  let cells = cells_of_trace rows in
  let expected = (E.paper_simd ()).E.cells in
  checkb "VM occupancy equals Figure 6's schedule" (cells = expected)

let suite =
  [
    case "flattened VM trace = Figure 4" t_flattened_vm_trace;
    case "naive VM trace = Figure 6" t_naive_vm_trace;
  ]
