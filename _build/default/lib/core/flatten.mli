(** Loop flattening (paper §4, Figures 9–12) — the paper's contribution.

    Input: a normalized two-level nest ([Normalize.nest], GENNEST of
    Figure 8).  Output: a block in which BODY has been lifted out of the
    inner loop, so that (after SIMDization, [Simdize]) each processor can
    advance independently to its next iteration containing useful work. *)

open Lf_lang

(** The three forms of the transformation, in increasing order of required
    preconditions (and decreasing run-time overhead). *)
type variant =
  | General  (** Figure 10: always applicable, guards latched into flags *)
  | Optimized
      (** Figure 11: needs side-effect-free tests and inner initialization
          (condition 1) and at-least-once inner loops (condition 2) *)
  | DoneTest
      (** Figure 12: additionally needs a last-iteration test
          (condition 3), saving the final increment *)

val variant_to_string : variant -> string

(** The guard-flag form of Figure 9: control flow still unchanged, but
    every [test_l] result is latched into a flag.  Returns the block and
    the two flag names (t1, t2). *)
val with_guards :
  fresh:Fresh.t -> Normalize.nest -> Ast.block * string * string

(** Figure 10, unconditionally (see [flatten] for the checked entry
    point). *)
val flatten_general : fresh:Fresh.t -> Normalize.nest -> Ast.block

(** Figure 11, unconditionally. *)
val flatten_optimized : Normalize.nest -> Ast.block

(** Figure 12, unconditionally; the expression is the inner loop's
    "currently in the last iteration" predicate. *)
val flatten_done_test : Normalize.nest -> Ast.expr -> Ast.block

(** Why a variant was refused. *)
type rejection = {
  rej_variant : variant;
  rej_reason : string;
}

val pp_rejection : rejection Fmt.t

(** Is the inner initialization harmless to re-execute once after the
    final outer iteration (condition 1)?  True when it consists only of
    scalar assignments with pure right-hand sides to variables not in
    [live_out]. *)
val init2_harmless :
  Lf_analysis.Side_effects.purity_env ->
  live_out:string list ->
  Normalize.nest ->
  bool

(** Check the preconditions of a variant (paper §4, conditions 1–3).
    [assume_inner_nonempty] asserts condition 2 (e.g. the paper's "each
    atom has at least one interaction partner"); [live_out] lists
    variables read after the nest. *)
val check :
  ?purity:Lf_analysis.Side_effects.purity_env ->
  ?assume_inner_nonempty:bool ->
  ?live_out:string list ->
  variant ->
  Normalize.nest ->
  (unit, rejection) result

(** Flatten with an explicitly chosen variant, after checking its
    preconditions. *)
val flatten :
  fresh:Fresh.t ->
  ?purity:Lf_analysis.Side_effects.purity_env ->
  ?assume_inner_nonempty:bool ->
  ?live_out:string list ->
  variant ->
  Normalize.nest ->
  (Ast.block, rejection) result

(** Choose the most optimized applicable variant (Fig. 12 ≻ Fig. 11 ≻
    Fig. 10) and flatten.  Never fails: the general variant always
    applies. *)
val flatten_auto :
  fresh:Fresh.t ->
  ?purity:Lf_analysis.Side_effects.purity_env ->
  ?assume_inner_nonempty:bool ->
  ?live_out:string list ->
  Normalize.nest ->
  Ast.block * variant

(** Flatten a loop tower of any depth, innermost pair first (§4's
    extension to "deeper loop nests").  Returns the flattened block and
    the variants used, outermost first; a depth-1 tower is returned
    unchanged with an empty variant list. *)
val flatten_deep :
  fresh:Fresh.t ->
  ?purity:Lf_analysis.Side_effects.purity_env ->
  ?assume_inner_nonempty:bool ->
  ?variant:variant ->
  Ast.stmt ->
  (Ast.block * variant list, rejection) result
