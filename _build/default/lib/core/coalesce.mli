(** Loop coalescing (Polychronopoulos 1987) — the §7 comparison
    transformation.  Rewrites a {e rectangular} two-level counted nest into
    one loop over the product space with div/mod index recovery; rejects
    the irregular nests that loop flattening is designed for. *)

open Lf_lang

type rejection = { reason : string }

val pp_rejection : rejection Fmt.t

(** Classify a statement as a rectangular nest:
    (outer control, inner control, inner body). *)
val rectangular :
  Ast.stmt ->
  (Ast.do_control * Ast.do_control * Ast.block, rejection) result

(** Coalesce into a single loop; FORALL nests stay FORALL. *)
val coalesce :
  fresh:Fresh.t -> Ast.stmt -> (Ast.block, rejection) result
