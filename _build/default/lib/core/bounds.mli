(** The paper's analytical time bounds (Equations 1, 2, 1′, 2′, 1″, 2″):
    "our time bound has increased from a maximum over sums to a sum over
    maxima." *)

(** Trip structure: [trips.(p)] lists the inner trip counts of processor
    [p]'s outer iterations. *)
type t = int array array

val of_lists : int list list -> t

(** Eq. 1 (= Eq. 1′ = Eq. 1″): the MIMD bound [max_p Σ_i L_p^i] — also the
    flattened SIMD bound. *)
val time_mimd : t -> int

(** Eq. 2 (= Eq. 2′ = Eq. 2″): the unflattened SIMD bound
    [Σ_i max_p L_p^i]; processors whose outer iterations are exhausted
    contribute nothing. *)
val time_simd : t -> int

(** Alias of [time_mimd]: what the flattened version achieves. *)
val flattened_time : t -> int

(** [time_simd / time_mimd] — the flattening speedup bound, ≥ 1. *)
val speedup : t -> float

(** Distribute global per-iteration trip counts over [p] processors,
    blockwise or cyclically.  The processor count must divide the
    iteration count. *)
val distribute : p:int -> [ `Block | `Cyclic ] -> int array -> t
