lib/core/coalesce.ml: Ast Ast_util Fmt Fresh Lf_lang List Simplify
