lib/core/bounds.mli:
