lib/core/normalize.ml: Ast Ast_util Fresh Lf_analysis Lf_lang List Option Simplify
