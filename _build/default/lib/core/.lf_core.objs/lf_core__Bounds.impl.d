lib/core/bounds.ml: Array List
