lib/core/validate.mli: Ast Fmt Interp Lf_lang Values
