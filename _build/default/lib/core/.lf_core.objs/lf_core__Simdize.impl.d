lib/core/simdize.ml: Ast Ast_util Errors Fresh Hashtbl Lf_lang List Option Pretty Set Simplify String
