lib/core/fresh.ml: Ast Ast_util Lf_lang List Printf String
