lib/core/flatten.mli: Ast Fmt Fresh Lf_analysis Lf_lang Normalize
