lib/core/flatten.ml: Ast Fmt Fresh Lf_analysis Lf_lang List Normalize Option
