lib/core/normalize.mli: Ast Fresh Lf_lang
