lib/core/validate.ml: Ast Env Fmt Interp Lf_lang List Values
