lib/core/pipeline.ml: Ast Ast_util Flatten Fmt Fresh Fun Lf_analysis Lf_lang List Normalize Pretty Simdize String
