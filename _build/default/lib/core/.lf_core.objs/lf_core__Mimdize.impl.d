lib/core/mimdize.ml: Ast Ast_util Fmt Fresh Lf_lang List Option Pipeline Pretty Simdize Simplify Stdlib
