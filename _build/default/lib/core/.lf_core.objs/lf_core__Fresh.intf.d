lib/core/fresh.mli: Lf_lang
