lib/core/mimdize.mli: Ast Fresh Lf_lang Simdize Stdlib
