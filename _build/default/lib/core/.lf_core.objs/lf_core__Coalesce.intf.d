lib/core/coalesce.mli: Ast Fmt Fresh Lf_lang
