lib/core/pipeline.mli: Ast Flatten Lf_analysis Lf_lang Normalize Simdize
