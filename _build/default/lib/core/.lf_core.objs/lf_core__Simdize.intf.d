lib/core/simdize.mli: Ast Fresh Lf_lang Set
