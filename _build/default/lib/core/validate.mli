(** Translation validation by interpretation: run the original and the
    transformed block on identical inputs and compare final stores and the
    external-call trace — the dynamic check of the paper's claim that
    flattening "executes exactly the same instructions in the same order
    and the same number of times." *)

open Lf_lang

type mismatch =
  | Var_differs of string * Values.value option * Values.value option
  | Obs_length of int * int
  | Obs_differs of int * string * string

val pp_mismatch : mismatch Fmt.t

type report = {
  ok : bool;
  mismatches : mismatch list;
  steps_original : int;
  steps_transformed : int;
}

val obs_to_string : Interp.observation -> string

(** [compare_runs ~vars ~setup a b] runs both blocks in fresh contexts
    prepared by [setup] and compares the variables [vars] plus the
    observation traces.  Synthetic transformer-introduced variables should
    not be listed in [vars]. *)
val compare_runs :
  ?params:(string * Values.value) list ->
  ?fuel:int ->
  ?setup:(Interp.t -> unit) ->
  vars:string list ->
  Ast.block ->
  Ast.block ->
  report
