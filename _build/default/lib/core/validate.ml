(** Translation validation by interpretation.

    The paper argues (Fig. 10 discussion) that flattening "still executes
    exactly the same instructions in the same order and the same number of
    times."  This module checks that claim dynamically for concrete inputs:
    it runs the original and the transformed block in identical environments
    and compares (a) the final values of all observable variables and (b)
    the observation trace (sequence of external subroutine calls with
    arguments).

    This is the testing backstop behind the transformation passes; the
    static preconditions live in [Flatten.check] / [Lf_analysis]. *)

open Lf_lang

type mismatch =
  | Var_differs of string * Values.value option * Values.value option
  | Obs_length of int * int
  | Obs_differs of int * string * string

let pp_mismatch ppf = function
  | Var_differs (v, a, b) ->
      Fmt.pf ppf "variable %s differs: %a vs %a" v
        (Fmt.option ~none:(Fmt.any "<unset>") Values.pp)
        a
        (Fmt.option ~none:(Fmt.any "<unset>") Values.pp)
        b
  | Obs_length (a, b) -> Fmt.pf ppf "observation counts differ: %d vs %d" a b
  | Obs_differs (i, a, b) ->
      Fmt.pf ppf "observation %d differs: %s vs %s" i a b

type report = {
  ok : bool;
  mismatches : mismatch list;
  steps_original : int;
  steps_transformed : int;
}

let obs_to_string (o : Interp.observation) =
  Fmt.str "%s(%a)" o.Interp.ob_proc
    Fmt.(list ~sep:(any ", ") Values.pp)
    o.Interp.ob_args

(** [compare_runs ~vars ~setup a b] runs blocks [a] and [b] in fresh
    contexts prepared by [setup] and compares the variables [vars] and the
    observation traces.  Synthetic variables introduced by the transformer
    (guard flags, auxiliary induction variables) should not be in [vars]. *)
let compare_runs ?(params = []) ?fuel ?(setup = fun _ -> ()) ~(vars : string list)
    (a : Ast.block) (b : Ast.block) : report =
  let run blk =
    let ctx = Interp.run_block ~params ?fuel ~setup blk in
    ctx
  in
  let ca = run a and cb = run b in
  let mism = ref [] in
  List.iter
    (fun v ->
      let va = Env.find_opt ca.Interp.env v
      and vb = Env.find_opt cb.Interp.env v in
      let eq =
        match (va, vb) with
        | Some x, Some y -> Values.equal_value x y
        | None, None -> true
        | _ -> false
      in
      if not eq then mism := Var_differs (v, va, vb) :: !mism)
    vars;
  let oa = Interp.observations ca and ob = Interp.observations cb in
  if List.length oa <> List.length ob then
    mism := Obs_length (List.length oa, List.length ob) :: !mism
  else
    List.iteri
      (fun i (x, y) ->
        let sx = obs_to_string x and sy = obs_to_string y in
        if sx <> sy then mism := Obs_differs (i, sx, sy) :: !mism)
      (List.combine oa ob);
  {
    ok = !mism = [];
    mismatches = List.rev !mism;
    steps_original = ca.Interp.steps;
    steps_transformed = cb.Interp.steps;
  }
