(** MIMD code generation (paper §3, Figure 3): derive the per-processor
    F77_MIMD program from an F77D program with DECOMPOSITION / ALIGN /
    DISTRIBUTE directives.  References needing communication are rejected
    (the paper excludes communication, §5.2). *)

open Lf_lang

(** The per-processor id variable the generated program reads (bound by
    the driver, 1-based). *)
val myproc : string

type result = {
  program : Ast.program;
  distributed : string list;  (** arrays accessed through local indices *)
  local_count : Ast.expr;  (** iterations per processor (K/P) *)
  decomp : Simdize.decomp;
}

(** Arrays distributed in their first dimension, per the program's
    Fortran D directives. *)
val distributed_arrays :
  Ast.program -> (string * Simdize.decomp) list

(** Rewrite a loop body for processor-local execution: distributed arrays
    keep the plain induction variable in dimension 1; its other
    occurrences become the global-index variable. *)
val localize_body :
  var:string ->
  gvar:string ->
  distributed:string list ->
  Ast.block ->
  (Ast.block, string) Stdlib.result

(** Derive the F77_MIMD program for [p] processors. *)
val mimdize :
  fresh:Fresh.t ->
  p:Ast.expr ->
  Ast.program ->
  (result, string) Stdlib.result
