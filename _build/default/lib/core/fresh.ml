(** Fresh-name generation for compiler-introduced variables (guard flags,
    plural induction variables), avoiding every name already used in the
    program being transformed. *)

open Lf_lang

type t = {
  mutable used : string list;
  mutable counter : int;
}

let of_names names = { used = names; counter = 0 }

let of_block b =
  of_names
    (Ast_util.assigned_vars b @ Ast_util.read_vars b
    |> List.sort_uniq String.compare)

let of_program (p : Ast.program) =
  let t = of_block p.Ast.p_body in
  t.used <- List.map (fun d -> d.Ast.dc_name) p.Ast.p_decls @ t.used;
  t

let reserve t name = t.used <- name :: t.used

(** [fresh t base] returns [base] if unused, else [base_1], [base_2], ... *)
let fresh t base =
  if not (List.mem base t.used) then begin
    t.used <- base :: t.used;
    base
  end
  else begin
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if List.mem cand t.used then go (i + 1) else cand
    in
    let name = go 1 in
    t.used <- name :: t.used;
    name
  end
