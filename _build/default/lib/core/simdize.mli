(** Loop SIMDization (paper §3): deriving F90simd programs from F77/F77D —
    the Figure 5 (naive) and Figure 7/15 (flattened) code shapes. *)

open Lf_lang

(** Data decomposition of the parallel iteration space (paper §5.2:
    cyclic "cut-and-stack" on the DECmpp, blockwise on the CM-2). *)
type decomp =
  | Block
  | Cyclic

val decomp_to_string : decomp -> string

(** The predefined plural processor-index variable (the vector [1:P]);
    bound automatically by [Lf_simd.Vm]. *)
val iproc : string

module SS : Set.S with type elt = string

(** Is [e]'s value plural (per-processor), given the plural-variable set?
    A gather through a plural subscript is plural; a reduction over a
    plural operand is front-end scalar. *)
val expr_is_plural : SS.t -> Ast.expr -> bool

(** Fixed-point inference of plural variables: seeds plus every scalar
    assigned from a plural expression or under a plural condition.
    Arrays stay global (distributed) storage. *)
val infer_plural : seeds:string list -> Ast.block -> SS.t

(** Rewrite control flow over plural state: IF → WHERE, WHILE over a
    plural condition → [WHILE ANY(c) {WHERE (c) ...}]. *)
val vectorize_control : SS.t -> Ast.block -> Ast.block

(** [partition_init decomp ~p ~lo ~hi var] — plural initialization of
    [var], its per-processor last value, and the per-processor stride
    (cyclic: start [lo + iproc - 1], bound [hi], stride [p]; block: chunked,
    with the extent assumed divisible by [p]). *)
val partition_init :
  decomp ->
  p:Ast.expr ->
  lo:Ast.expr ->
  hi:Ast.expr ->
  string ->
  Ast.block * Ast.expr * Ast.expr

type flattened_simd = {
  fs_block : Ast.block;
  fs_plural : string list;  (** variables that must be declared plural *)
  fs_decomp : decomp;
}

(** SIMDize a flattened loop (output of [Flatten]) whose outer loop was
    counted over [var] in [lo..hi]: replaces the init with the partitioned
    plural init, rewrites the per-processor bound (block) or stride
    (cyclic, Figure 15's [At1 = At1 + P]), infers plural variables, and
    vectorizes control flow — yielding the Figure 7 / Figure 15 shape. *)
val simdize_flattened :
  fresh:Fresh.t ->
  decomp:decomp ->
  p:Ast.expr ->
  var:string ->
  lo:Ast.expr ->
  hi:Ast.expr ->
  Ast.block ->
  flattened_simd

type nest_simd = {
  ns_block : Ast.block;
  ns_plural : string list;
  ns_decomp : decomp;
}

(** SIMDize an unflattened two-level nest whose outer loop is the counted
    parallel loop (Figure 5's derivation): uniform front-end outer count,
    plural auxiliary induction variable, inner bounds raised to
    MAXVAL/MINVAL with a WHERE guard.  [divisible] asserts that [p]
    divides the outer extent (otherwise a guard wraps the body). *)
val simdize_nest :
  fresh:Fresh.t ->
  decomp:decomp ->
  p:Ast.expr ->
  ?divisible:bool ->
  Ast.stmt ->
  (nest_simd, string) result

(** {2 Sum reductions (extension)}

    Not in the paper — its §6 safety condition rejects reductions — but
    the standard vectorizer treatment: per-lane partial sums combined
    after the loop. *)

(** Scalars accumulated only as [v = v + e] (and read nowhere else) inside
    the block; [exclude] lists control variables. *)
val sum_reduction_candidates : exclude:string list -> Ast.block -> string list

(** Rewrite each reduction scalar to a per-lane partial accumulator
    ([vp = 0] before, [v -> vp] inside, [v = v + SUM(vp)] after); returns
    the rewritten block and the (scalar, partial) pairs. *)
val lower_sum_reductions :
  fresh:Fresh.t ->
  string list ->
  Ast.block ->
  Ast.block * (string * string) list
