(** The compiler pipeline (paper §6): applicability, safety, profitability,
    and the program-level driver that rewrites a whole [Ast.program]. *)

open Lf_lang

type target =
  | Sequential  (** flatten only, stay at the F77 level *)
  | Simd of {
      decomp : Simdize.decomp;
      p : Ast.expr;  (** processor-count expression *)
    }

type options = {
  variant : Flatten.variant option;  (** [None] = choose automatically *)
  assume_inner_nonempty : bool;  (** §4 condition 2, asserted by the user *)
  trusted_parallel : bool;  (** user asserts outer-loop independence *)
  pure_subroutines : string list;
      (** calls certified free of cross-iteration effects *)
  impure_funcs : string list;  (** functions with side effects *)
  deep : bool;  (** flatten towers deeper than two levels (§4) *)
  target : target;
}

val default_options : options

type outcome = {
  program : Ast.program;
  variant_used : Flatten.variant;
  safety : Lf_analysis.Parallel.result;
  profitable : bool;
      (** §6: inner bounds vary across outer iterations / processors *)
  plural_vars : string list;  (** SIMD targets: replicated variables *)
  notes : string list;
}

(** Split a block around its first top-level loop statement. *)
val split_first_loop :
  Ast.block -> (Ast.block * Ast.stmt * Ast.block) option

(** Profitability heuristic (§6): do the inner trip counts vary with the
    outer iteration? *)
val profitable : Normalize.nest -> bool

(** Flatten (and, for a SIMD target, SIMDize) the first loop nest of the
    program body.  GOTO loops are restructured first.  Fails with an
    explanatory message when the nest is not applicable or not safe. *)
val flatten_program :
  ?opts:options -> Ast.program -> (outcome, string) result

(** SIMDize the first nest {e without} flattening — the naive SIMD version
    of Figures 5/14, the evaluation's baseline.  Requires a SIMD target. *)
val simdize_program_naive :
  ?opts:options -> Ast.program -> (outcome, string) result
