(** The paper's analytical time bounds (Equations 1, 2, 1′, 2′, 1″, 2″).

    Given the per-processor trip-count structure of a two-level nest —
    processor [p] executes [K_p] outer iterations whose i-th inner loop
    runs [L_p^i] times — the bounds on inner-iteration steps are:

    - MIMD (Eq. 1):         [max_p Σ_{i=1..K_p} L_p^i]
    - unflattened SIMD (Eq. 2): [Σ_{i=1..max_p K_p} max_p L_p^i]
      (a processor whose [K_p] is exhausted contributes 0)
    - flattened SIMD (Eq. 1′ = Eq. 1): the MIMD bound — the point of the
      transformation.

    "Roughly speaking, our time bound has increased from a maximum over
    sums to a sum over maxima." *)

(** Trip structure: [trips.(p)] lists the inner trip counts of processor
    [p]'s outer iterations. *)
type t = int array array

let of_lists (ls : int list list) : t = Array.of_list (List.map Array.of_list ls)

(** Eq. 1 / Eq. 1′ / Eq. 1″: the MIMD (= flattened SIMD) bound. *)
let time_mimd (trips : t) : int =
  Array.fold_left
    (fun acc per_proc -> max acc (Array.fold_left ( + ) 0 per_proc))
    0 trips

(** Eq. 2 / Eq. 2′ / Eq. 2″: the unflattened (SIMDized) bound. *)
let time_simd (trips : t) : int =
  let kmax = Array.fold_left (fun m a -> max m (Array.length a)) 0 trips in
  let total = ref 0 in
  for i = 0 to kmax - 1 do
    let step =
      Array.fold_left
        (fun m a -> if i < Array.length a then max m a.(i) else m)
        0 trips
    in
    total := !total + step
  done;
  !total

let flattened_time = time_mimd

(** Speedup bound of flattening: [time_simd / time_mimd]; paper §5.4 —
    bounded above by [pCnt_max / pCnt_avg] for the balanced NBFORCE
    decomposition. *)
let speedup (trips : t) : float =
  let s = time_simd trips and m = time_mimd trips in
  if m = 0 then 1.0 else float_of_int s /. float_of_int m

(** Distribute the trip counts [l] of [k] outer iterations over [p]
    processors; blockwise ([`Block]) or cyclically ([`Cyclic]), mirroring
    the data layouts of §5.2.  [l] is indexed 0-based over the global
    iteration space. *)
let distribute ~(p : int) (layout : [ `Block | `Cyclic ]) (l : int array) : t =
  let k = Array.length l in
  if k mod p <> 0 then
    invalid_arg "Bounds.distribute: processor count must divide iterations";
  let per = k / p in
  match layout with
  | `Block ->
      Array.init p (fun pr -> Array.init per (fun i -> l.((pr * per) + i)))
  | `Cyclic ->
      Array.init p (fun pr -> Array.init per (fun i -> l.(pr + (i * p))))
