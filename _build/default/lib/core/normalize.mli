(** Loop normalization (paper §4, Figure 8): break every loop form into
    [init] / [test] / [increment] phases, and normalize perfect two-level
    nests into the GENNEST shape that [Flatten] consumes. *)

open Lf_lang

(** A loop in normal form. *)
type norm = {
  n_init : Ast.block;
  n_test : Ast.expr;  (** evaluated before each body execution *)
  n_increment : Ast.block;
  n_body : Ast.block;
  n_var : string option;  (** induction variable for counted loops *)
  n_done : Ast.expr option;
      (** "currently in the last iteration" test, when derivable (for
          [DO var = lo, hi, 1] this is [var = hi], §4 condition 3) *)
  n_parallel : bool;  (** loop was a FORALL (user-asserted parallel) *)
}

(** A normalized two-level nest (GENNEST of Figure 8).  Statements before
    the inner loop extend [inner.n_init]; statements after it extend
    [outer.n_increment]; [outer.n_body] is unused. *)
type nest = {
  outer : norm;
  inner : norm;
  body : Ast.block;  (** BODY of Figure 8 *)
}

(** Normalize one counted loop header. *)
val counted_norm : Ast.do_control -> Ast.block -> parallel:bool -> norm

(** Peel a trailing basic-induction update ([v = v ± c]) off a WHILE body;
    returns (body without it, increment phase, induction variable). *)
val peel_increment :
  Ast.expr -> Ast.block -> Ast.block * Ast.block * string option

(** Normalize one loop statement ([None] for non-loops).  [fresh] supplies
    names for synthetic control variables (post-test loops need a
    first-iteration flag). *)
val of_loop : fresh:Fresh.t -> Ast.stmt -> norm option

(** Reconstruct an executable loop from a normal form:
    [init; WHILE test {body; increment}]. *)
val to_while : norm -> Ast.block

(** Normalize a perfect two-level nest; the statement must be a loop whose
    body contains exactly one loop. *)
val of_nest : fresh:Fresh.t -> Ast.stmt -> (nest, string) result

(** Recognize a WHILE loop that is really a counted loop (the GOTO
    restructurer's output shape): the preceding block ends with
    [var = lo], the test simplifies to a bound on [var], and the trailing
    update is [var = var + 1].  Returns the shortened prefix and the
    equivalent DO statement. *)
val recognize_counted :
  pre:Ast.block -> Ast.stmt -> (Ast.block * Ast.stmt) option

(** Reconstruct GENNEST (Figure 8's left column) from a normalized nest —
    the original program up to loop-form normalization. *)
val nest_to_block : nest -> Ast.block
