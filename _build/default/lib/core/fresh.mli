(** Fresh-name generation for compiler-introduced variables, avoiding
    every name already used in the program being transformed. *)

type t

val of_names : string list -> t
val of_block : Lf_lang.Ast.block -> t
val of_program : Lf_lang.Ast.program -> t

(** Mark a name as taken. *)
val reserve : t -> string -> unit

(** [fresh t base] returns [base] if unused, else [base_1], [base_2], ...;
    the returned name is recorded as taken. *)
val fresh : t -> string -> string
