(** Distributed-array layouts: mapping between 1-based global element
    indices and (lane, layer) machine coordinates (paper §5.2). *)

type coords = {
  lane : int;  (** 1-based lane, 1..Gran *)
  layer : int;  (** 1-based memory layer, 1..Lrs *)
}

val layers : gran:int -> n:int -> int

(** Coordinates of global index [g] (1..n); raises on out-of-range. *)
val to_coords : Machine.layout_style -> gran:int -> n:int -> int -> coords

(** Inverse of [to_coords]; [None] when the slot holds no element. *)
val of_coords :
  Machine.layout_style -> gran:int -> n:int -> coords -> int option

(** Global indices owned by a lane, in layer order. *)
val owned : Machine.layout_style -> gran:int -> n:int -> int -> int list

(** Partition [1..n] over all lanes; [(partition ...).(lane-1)] lists that
    lane's elements in processing order. *)
val partition : Machine.layout_style -> gran:int -> n:int -> int list array
