lib/simd/metrics.ml: Fmt Hashtbl List Option
