lib/simd/pval.mli: Fmt Lf_lang Values
