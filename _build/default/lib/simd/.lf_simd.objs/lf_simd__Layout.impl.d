lib/simd/layout.ml: Array Lf_lang List Machine
