lib/simd/machine.mli: Fmt
