lib/simd/vm.mli: Ast Hashtbl Lf_lang Metrics Pval Values
