lib/simd/metrics.mli: Fmt Hashtbl
