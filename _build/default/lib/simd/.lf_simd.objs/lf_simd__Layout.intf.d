lib/simd/layout.mli: Machine
