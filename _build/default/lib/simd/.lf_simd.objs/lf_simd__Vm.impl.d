lib/simd/vm.ml: Array Ast Errors Hashtbl Interp Intrinsics Lf_lang List Metrics Nd Pval String Values
