lib/simd/pval.ml: Array Errors Fmt Fun Lf_lang Option Values
