lib/simd/machine.ml: Fmt
