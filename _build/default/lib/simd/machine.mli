(** Machine models (paper §5.2): structural parameters (data granularity,
    layout, memory layers) plus the per-machine cost constants calibrated
    from the paper's Table 1 (see EXPERIMENTS.md). *)

type layout_style =
  | Cut_and_stack  (** layer l holds elements (l-1)*Gran+1 .. l*Gran *)
  | Blockwise  (** lane q holds elements (q-1)*Lrs+1 .. q*Lrs *)

type t = {
  name : string;
  processors : int;
  gran : int;  (** data granularity for this configuration *)
  layout : layout_style;
  cost_unflat_step : float;
      (** seconds per (pr, layer) sweep of the unflattened kernel *)
  cost_layer_check : float;
      (** extra per-layer activity check of the layer-selecting L1 kernel *)
  cost_flat_step : float;
      (** seconds per flattened-kernel iteration (indirect addressing) *)
  cost_l1_frontend : float;
      (** small per-(pr, layer) front-end cost L1 pays over all maxLrs
          layers (§5.3's ~5% Nmax effect on the DECmpp) *)
  l1_touches_all_layers : bool;
      (** §5.3: the CM-2 cycles through all memory layers even under
          explicit 1:Lrs subscripts *)
}

(** CM-2 with [p] one-bit processors; slicewise compiler: Gran = p/8. *)
val cm2 : p:int -> t

(** DECmpp 12000 (MasPar MP-1200) with [p] processors; Gran = p. *)
val decmpp : p:int -> t

(** Sparc 2 sequential baseline (Gran = 1); the cost constant is seconds
    per pair interaction. *)
val sparc : t

(** Memory layers in use for an [n]-element distributed array:
    Lrs = 1 + (n-1)/Gran (§5.3). *)
val layers : t -> n:int -> int

val pp : t Fmt.t
