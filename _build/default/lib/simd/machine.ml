(** Machine models (paper §5.2, "The hardware used").

    Absolute seconds from the paper's Table 1 are reproduced through a
    small per-machine cost model; the constants below are calibrated from
    that table (see EXPERIMENTS.md).  The structural parameters are the
    ones the paper identifies as decisive:

    - {b data granularity} [Gran]: the smallest array extent distributable
      over all processors — [P] on the DECmpp, [P/8] on the CM-2 under the
      slicewise compiler (32 one-bit processors per FPA, vector length 4);
    - {b layout}: cyclic ("cut-and-stack") on the DECmpp vs blockwise on
      the CM-2;
    - {b memory layers}: an array of [N > Gran] elements occupies
      [Lrs = ceil(N / Gran)] layers, each processed by a separate sweep of
      the machine. *)

type layout_style =
  | Cut_and_stack  (** layer l holds elements (l-1)*Gran+1 .. l*Gran *)
  | Blockwise  (** lane q holds elements (q-1)*Lrs+1 .. q*Lrs *)

type t = {
  name : string;
  processors : int;
  gran : int;  (** data granularity for this configuration *)
  layout : layout_style;
  (* cost model (seconds per vector step of the NBFORCE force routine,
     including loop overhead), calibrated from the paper's Table 1 *)
  cost_unflat_step : float;
      (** one (pr, layer) sweep of the unflattened kernel (the L2 regime) *)
  cost_layer_check : float;
      (** extra per-layer activity check of the layer-selecting L1 kernel *)
  cost_flat_step : float;
      (** one iteration of the flattened kernel (indirect addressing) *)
  cost_l1_frontend : float;
      (** small per-(pr, layer) front-end cost the L1 kernel pays over all
          maxLrs layers even when only Lrs are selected — the §5.3
          observation that doubling Nmax still slows DECmpp L1 by ~5% *)
  l1_touches_all_layers : bool;
      (** paper §5.3: "at least on the CM-2, the processors will always
          cycle through all layers of memory" even under explicit 1:Lrs
          subscripts *)
}

(** CM-2 with [p] one-bit processors (8192 ... 65536); slicewise compiler:
    Gran = p/8. *)
let cm2 ~p =
  {
    name = "CM-2";
    processors = p;
    gran = p / 8;
    layout = Blockwise;
    cost_unflat_step = 3.66e-3;
    cost_layer_check = 2.5e-3;
    cost_flat_step = 5.1e-3;
    cost_l1_frontend = 0.0;
    l1_touches_all_layers = true;
  }

(** DECmpp 12000 (MasPar MP-1200) with [p] processors (1024 ... 16384);
    Gran = p. *)
let decmpp ~p =
  {
    name = "DECmpp 12000";
    processors = p;
    gran = p;
    layout = Cut_and_stack;
    cost_unflat_step = 3.55e-3;
    cost_layer_check = 0.20e-3;
    cost_flat_step = 3.1e-3;
    cost_l1_frontend = 0.17e-3;
    l1_touches_all_layers = false;
  }

(** Sparc 2 baseline: sequential, Gran = 1; the cost constant is seconds
    per pair interaction (3.86 s for the 4 Å case, §5.5). *)
let sparc =
  {
    name = "Sparc 2";
    processors = 1;
    gran = 1;
    layout = Cut_and_stack;
    cost_unflat_step = 56.2e-6;
    cost_layer_check = 0.0;
    cost_flat_step = 56.2e-6;
    cost_l1_frontend = 0.0;
    l1_touches_all_layers = false;
  }

(** Layers in actual use for an [n]-element distributed array:
    Lrs = floor(1 + (n-1)/Gran) (paper §5.3). *)
let layers m ~n = if n <= 0 then 0 else 1 + ((n - 1) / m.gran)

let pp ppf m =
  Fmt.pf ppf "%s (P=%d, Gran=%d, %s layout)" m.name m.processors m.gran
    (match m.layout with
    | Cut_and_stack -> "cut-and-stack"
    | Blockwise -> "blockwise")
