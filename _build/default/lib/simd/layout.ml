(** Distributed-array layouts: mapping between global element indices and
    (lane, layer) coordinates on a machine with data granularity [Gran].

    Indices are 1-based throughout (Fortran convention):
    - {b cut-and-stack} (DECmpp): global index g sits on lane
      [1 + (g-1) mod Gran] in layer [1 + (g-1) / Gran];
    - {b blockwise} (CM-2): lane q holds the consecutive chunk of [Lrs]
      elements starting at [(q-1)*Lrs + 1] (chunks are sized by the layer
      count of the whole array). *)

type coords = {
  lane : int;  (** 1-based processor/lane index, 1..Gran *)
  layer : int;  (** 1-based memory layer, 1..Lrs *)
}

let layers ~gran ~n = if n <= 0 then 0 else 1 + ((n - 1) / gran)

let to_coords (style : Machine.layout_style) ~gran ~n (g : int) : coords =
  if g < 1 || g > n then
    Lf_lang.Errors.runtime_error "layout: index %d outside 1..%d" g n;
  match style with
  | Machine.Cut_and_stack ->
      { lane = 1 + ((g - 1) mod gran); layer = 1 + ((g - 1) / gran) }
  | Machine.Blockwise ->
      let lrs = layers ~gran ~n in
      { lane = 1 + ((g - 1) / lrs); layer = 1 + ((g - 1) mod lrs) }

let of_coords (style : Machine.layout_style) ~gran ~n (c : coords) :
    int option =
  let g =
    match style with
    | Machine.Cut_and_stack -> ((c.layer - 1) * gran) + c.lane
    | Machine.Blockwise ->
        let lrs = layers ~gran ~n in
        ((c.lane - 1) * lrs) + c.layer
  in
  if g >= 1 && g <= n then Some g else None

(** The global indices owned by [lane], in layer order. *)
let owned (style : Machine.layout_style) ~gran ~n (lane : int) : int list =
  let lrs = layers ~gran ~n in
  List.init lrs (fun i -> { lane; layer = i + 1 })
  |> List.filter_map (of_coords style ~gran ~n)

(** Partition [1..n] over all lanes; [result.(lane-1)] lists the lane's
    elements in processing order. *)
let partition (style : Machine.layout_style) ~gran ~n : int list array =
  Array.init gran (fun q -> owned style ~gran ~n (q + 1))
