lib/analysis/loop_info.ml: Array Ast_util Hashtbl Lf_lang List Option
