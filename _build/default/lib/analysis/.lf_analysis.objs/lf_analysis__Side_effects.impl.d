lib/analysis/side_effects.ml: Ast_util Lf_lang List
