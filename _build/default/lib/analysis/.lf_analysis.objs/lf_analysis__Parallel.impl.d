lib/analysis/parallel.ml: Ast_util Depend Fmt Lf_lang List Loop_info Option Set String
