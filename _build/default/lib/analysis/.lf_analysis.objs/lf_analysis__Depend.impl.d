lib/analysis/depend.ml: Ast_util Fmt Lf_lang List Option Pretty
