(** MIMD execution model (paper §3, Figure 3): each of the P processors
    runs its own copy of the program asynchronously on its own partition,
    with a separate name space.  The running time is the maximum over the
    per-processor times — Equation 1's [max_p Σ_i L_p^i] when the unit of
    time is one inner-loop iteration.

    Each processor gets an independent sequential [Lf_lang.Interp] context;
    [setup] seeds processor [p]'s name space (its partition of the data,
    per the owner-computes rule). *)

open Lf_lang

type result = {
  contexts : Interp.t array;
  steps : int array;  (** interpreter steps per processor *)
  time : int;  (** max over processors *)
  calls : int array;  (** external-subroutine calls per processor *)
  call_time : int;  (** max over processors of external calls — Eq. 1 when
                        each call is one inner iteration *)
}

(** Run [prog] on [p] processors.  [setup proc ctx] prepares processor
    [proc] (0-based) — typically binding its block or cyclic slice of the
    global arrays; [procs] registers external subroutines available on all
    processors. *)
let run ?fuel ~p ?(procs = []) ~(setup : int -> Interp.t -> unit)
    (prog : Ast.program) : result =
  let contexts =
    Array.init p (fun proc ->
        let ctx = Interp.create ?fuel () in
        List.iter (fun (name, f) -> Interp.register_proc ctx name f) procs;
        setup proc ctx;
        Interp.declare ctx prog.Ast.p_decls;
        Interp.exec_block ctx prog.Ast.p_body;
        ctx)
  in
  let steps = Array.map (fun c -> c.Interp.steps) contexts in
  let calls =
    Array.map (fun c -> List.length (Interp.observations c)) contexts
  in
  {
    contexts;
    steps;
    time = Array.fold_left max 0 steps;
    calls;
    call_time = Array.fold_left max 0 calls;
  }

(** Run a bare block per processor. *)
let run_block ?fuel ~p ?(procs = []) ~(setup : int -> Interp.t -> unit)
    (b : Ast.block) : result =
  run ?fuel ~p ~procs ~setup (Ast.program "mimd" b)
