(** MIMD execution model (paper §3, Figure 3): P processors run the same
    program asynchronously over separate name spaces; time is the maximum
    over per-processor times (Eq. 1 when the unit is one inner
    iteration). *)

open Lf_lang

type result = {
  contexts : Interp.t array;
  steps : int array;  (** interpreter steps per processor *)
  time : int;  (** max over processors *)
  calls : int array;  (** external-subroutine calls per processor *)
  call_time : int;  (** max over processors of external calls (Eq. 1) *)
}

(** [run ~p ~setup prog]: processor [i] (0-based) gets a fresh sequential
    context prepared by [setup i] — typically its block or cyclic slice of
    the global arrays, per the owner-computes rule.  [procs] registers
    external subroutines on every processor. *)
val run :
  ?fuel:int ->
  p:int ->
  ?procs:(string * Interp.proc) list ->
  setup:(int -> Interp.t -> unit) ->
  Ast.program ->
  result

val run_block :
  ?fuel:int ->
  p:int ->
  ?procs:(string * Interp.proc) list ->
  setup:(int -> Interp.t -> unit) ->
  Ast.block ->
  result
