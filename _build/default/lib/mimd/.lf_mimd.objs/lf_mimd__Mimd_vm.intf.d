lib/mimd/mimd_vm.mli: Ast Interp Lf_lang
