lib/mimd/mimd_vm.ml: Array Ast Interp Lf_lang List
