lib/report/ascii_plot.ml: Array Float Fmt List String
