lib/report/experiments.ml: Array Ascii_plot Ast Buffer Env Filename Float Fmt Interp Lf_core Lf_kernels Lf_lang Lf_md Lf_simd List Nd Option Paper_data Parser Pretty Printf String Table Values
