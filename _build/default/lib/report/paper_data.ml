(** The published numbers from the paper, embedded for side-by-side
    paper-vs-measured reporting (EXPERIMENTS.md).

    Table 1: running times in seconds per (machine row, cutoff, loop
    version); [None] marks the cells the paper could not run (L1/L2 stack
    overflows, §5.5) or does not report.  Table 2: force-call counts.
    §5.4: pCnt_max/pCnt_avg ratios.  §5.5: Sparc 2 times. *)

type row1 = {
  machine : [ `CM2 | `DECmpp ];
  p : int;
  gran : int;
  (* per cutoff (4, 8, 12, 16 Å): (L1, L2, Lf) *)
  times : (float option * float option * float option) array;
}

let table1 : row1 list =
  [
    { machine = `CM2; p = 1024; gran = 128;
      times =
        [| (None, None, Some 3.89); (None, None, Some 27.03);
           (None, None, None); (None, None, None) |] };
    { machine = `CM2; p = 2048; gran = 256;
      times =
        [| (Some 6.57, Some 3.86, Some 2.13);
           (Some 42.91, Some 25.13, Some 14.72);
           (None, None, None); (None, None, None) |] };
    { machine = `CM2; p = 4096; gran = 512;
      times =
        [| (Some 3.22, Some 1.83, Some 1.11);
           (Some 21.02, Some 11.95, Some 7.65);
           (None, None, Some 24.78); (None, None, None) |] };
    { machine = `CM2; p = 8192; gran = 1024;
      times =
        [| (Some 1.72, Some 0.99, Some 0.64);
           (Some 11.19, Some 6.46, Some 4.57);
           (None, None, Some 13.31); (None, None, Some 27.17) |] };
    { machine = `DECmpp; p = 1024; gran = 1024;
      times =
        [| (Some 0.910, Some 0.934, Some 0.390);
           (Some 5.36, Some 5.85, Some 2.81);
           (Some 15.91, Some 17.45, Some 8.19);
           (Some 36.86, Some 40.45, Some 16.84) |] };
    { machine = `DECmpp; p = 2048; gran = 2048;
      times =
        [| (Some 0.638, Some 0.481, Some 0.266);
           (Some 3.35, Some 3.00, Some 1.69);
           (Some 9.96, Some 8.95, Some 4.98);
           (Some 23.07, Some 20.71, Some 10.68) |] };
    { machine = `DECmpp; p = 4096; gran = 4096;
      times =
        [| (Some 0.352, Some 0.269, Some 0.157);
           (Some 1.86, Some 1.55, Some 1.05);
           (Some 5.18, Some 4.59, Some 3.14);
           (Some 11.96, Some 10.58, Some 6.51) |] };
    { machine = `DECmpp; p = 8192; gran = 8192;
      times =
        [| (Some 0.145, Some 0.129, Some 0.104);
           (Some 0.683, Some 0.715, Some 0.671);
           (Some 1.92, Some 2.09, Some 2.00);
           (Some 4.42, Some 4.82, Some 4.66) |] };
  ]

type row2 = {
  gran2 : int;
  (* per cutoff (4, 8, 12, 16 Å): (Lu, Lf) — Lu scaled by Lrs *)
  counts : (int option * int option) array;
}

let table2 : row2 list =
  [
    { gran2 = 128;
      counts =
        [| (None, Some 722); (None, Some 5076); (None, None); (None, None) |] };
    { gran2 = 256;
      counts =
        [| (Some 924, Some 397); (Some 6048, Some 2754);
           (None, None); (None, None) |] };
    { gran2 = 512;
      counts =
        [| (Some 462, Some 224); (Some 3024, Some 1559);
           (None, Some 4649); (None, None) |] };
    { gran2 = 1024;
      counts =
        [| (Some 231, Some 125); (Some 1512, Some 906);
           (Some 4536, Some 2642); (Some 10528, Some 5436) |] };
    { gran2 = 2048;
      counts =
        [| (Some 132, Some 86); (Some 864, Some 545);
           (Some 2592, Some 1606); (Some 6016, Some 3434) |] };
    { gran2 = 4096;
      counts =
        [| (Some 66, Some 51); (Some 432, Some 357);
           (Some 1296, Some 1069); (Some 3008, Some 2222) |] };
    { gran2 = 8192;
      counts =
        [| (Some 33, Some 33); (Some 216, Some 216);
           (Some 648, Some 648); (Some 1504, Some 1504) |] };
  ]

(** §5.4: pCnt_max / pCnt_avg at the four table cutoffs. *)
let pcnt_ratios = [ (4.0, 3.347); (8.0, 2.689); (12.0, 2.665); (16.0, 2.949) ]

(** Last Table 2 row = Figure 18's maxima at the table cutoffs. *)
let pcnt_max = [ (4.0, 33); (8.0, 216); (12.0, 648); (16.0, 1504) ]

(** §5.5: Sparc 2 running times. *)
let sparc_times = [ (4.0, 3.86); (8.0, 31.43) ]

let cutoffs = [| 4.0; 8.0; 12.0; 16.0 |]
