(** Minimal ASCII table rendering for the experiment reports. *)

type t = {
  header : string list;
  rows : string list list;
}

let make ~header rows = { header; rows }

let render ppf (t : t) =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun m r -> max m (String.length (List.nth r c))) 0 all)
  in
  let line ch =
    Fmt.pf ppf "+%s+@."
      (String.concat "+"
         (List.map (fun w -> String.make (w + 2) ch) widths))
  in
  let row r =
    Fmt.pf ppf "|%s|@."
      (String.concat "|"
         (List.map2 (fun w c -> Printf.sprintf " %*s " w c) widths r))
  in
  line '-';
  row (List.hd all);
  line '=';
  List.iter row (List.tl all);
  line '-'

let to_string t = Fmt.str "%a" render t

let cell_f f = Printf.sprintf "%.3f" f
let cell_f2 f = Printf.sprintf "%.2f" f
let cell_i = string_of_int
