(** Synthetic molecular configurations — the stand-in for the paper's
    GROMOS superoxide-dismutase (SOD) coordinates (see DESIGN.md's
    substitution table). *)

type atom = {
  x : float;
  y : float;
  z : float;
  charge : float;
  kind : int;  (** Lennard-Jones type index, 0 .. [n_kinds]-1 *)
}

type t = {
  atoms : atom array;
  name : string;
}

val n_atoms : t -> int
val distance : atom -> atom -> float
val n_kinds : int

val default_residues : int
val default_atoms_per_residue : int

(** Fraction of atoms drawn from the dense Gaussian core of each subunit
    (the knob behind the Figure 18 max/avg ratio). *)
val core_frac : float

(** Deterministic in-place Fisher–Yates shuffle (decorrelates atom
    numbering from position for the owner-side pair storage). *)
val shuffle : Rng.t -> 'a array -> unit

(** Rescale all coordinates about the origin (density calibration). *)
val scale : t -> float -> t

(** The synthetic SOD-like homodimer before density calibration; prefer
    [Workload.sod].  Deterministic in [seed]; exactly [n] atoms. *)
val sod_uncalibrated : ?seed:int -> ?n:int -> unit -> t

(** A uniform random gas in a cube — the near-null workload for the
    ablation benches (combine with [Pairlist.brute_force_periodic]). *)
val uniform_gas : ?seed:int -> n:int -> density:float -> unit -> t

(** A two-phase droplet: half dense, half diffuse — an adversarial
    workload with extreme pCnt variance. *)
val droplet : ?seed:int -> n:int -> unit -> t
