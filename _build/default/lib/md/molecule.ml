(** Synthetic molecular configurations.

    The paper's test case is bovine superoxide dismutase (SOD): N = 6968
    atoms, "two identical subunits, each with 151 amino-acid residues and
    two metal atoms" (§5.4).  The GROMOS coordinate and pairlist data are
    not available, so we synthesize a protein-like configuration with the
    properties the evaluation actually depends on (see DESIGN.md):

    - overall atom density of a folded protein (≈ 0.08 atoms/Å³ counting
      each nonbonded pair once), giving cubic growth of pCnt with the
      cutoff radius (Figure 18);
    - local density inhomogeneity (packed core, looser surface, two-subunit
      structure), giving a pCnt_max/pCnt_avg ratio well above 1 — the
      quantity that bounds the profit of loop flattening (Eqs. 1″/2″).

    Construction: each subunit is a residue-level random walk (Cα spacing
    3.8 Å) confined to a ball, with side-chain atoms placed around each
    backbone center; the two subunits are congruent copies placed side by
    side, touching at an interface (as in the real SOD homodimer). *)

type atom = {
  x : float;
  y : float;
  z : float;
  charge : float;
  kind : int;  (** Lennard-Jones type index *)
}

type t = {
  atoms : atom array;
  name : string;
}

let n_atoms m = Array.length m.atoms

let distance a b =
  let dx = a.x -. b.x and dy = a.y -. b.y and dz = a.z -. b.z in
  Float.sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz))

(** Protein-like atom kinds: a small palette with GROMOS-ish parameters. *)
let n_kinds = 5

let default_residues = 151
let default_atoms_per_residue = 23

(** Build one subunit of [count] atoms inside a ball of radius [radius]
    centered at [center].  Atom positions are sampled from a two-component
    radial density — a denser Gaussian core (fraction [core_frac], width
    [radius]/2.8) inside a uniform bulk — which is what gives the
    folded-protein pCnt_max/pCnt_avg ratio of Figure 18 (packed hydrophobic
    core, looser surface loops).  A small per-atom jitter stands in for the
    covalent structure of the [default_residues] residues. *)
let core_frac = 0.08

let subunit rng ~count ~radius ~center =
  let cx, cy, cz = center in
  let atoms = ref [] in
  for _ = 1 to count do
    let px, py, pz =
      if Rng.float rng < core_frac then begin
        let s = radius /. 2.8 in
        let x = Rng.normal rng *. s
        and y = Rng.normal rng *. s
        and z = Rng.normal rng *. s in
        let r = Float.sqrt ((x *. x) +. (y *. y) +. (z *. z)) in
        if r > radius then
          let f = radius /. r in
          (x *. f, y *. f, z *. f)
        else (x, y, z)
      end
      else begin
        let dx, dy, dz = Rng.in_unit_ball rng in
        (dx *. radius, dy *. radius, dz *. radius)
      end
    in
    let jx = Rng.normal rng *. 0.8
    and jy = Rng.normal rng *. 0.8
    and jz = Rng.normal rng *. 0.8 in
    atoms :=
      {
        x = cx +. px +. jx;
        y = cy +. py +. jy;
        z = cz +. pz +. jz;
        charge = Rng.range rng (-0.4) 0.4;
        kind = Rng.int rng n_kinds;
      }
      :: !atoms
  done;
  List.rev !atoms

(** Deterministic Fisher–Yates shuffle: decorrelates atom numbering from
    position, so the owner-side (j > i) pair storage halves every
    neighbourhood uniformly. *)
let shuffle rng (a : 'a array) =
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

(** Rescale all coordinates by [s] about the origin (density calibration). *)
let scale (m : t) s : t =
  {
    m with
    atoms =
      Array.map
        (fun a -> { a with x = a.x *. s; y = a.y *. s; z = a.z *. s })
        m.atoms;
  }

(** The synthetic SOD-like homodimer.  [n] defaults to the paper's 6968;
    atoms are split into two identical-statistics subunits plus metal
    centers.  Deterministic in [seed]. *)
let sod_uncalibrated ?(seed = 1992) ?(n = 6968) () : t =
  let rng = Rng.create seed in
  let per_subunit = (n - 4) / 2 in
  (* confinement radius for protein density ~0.16 atoms/A^3 local *)
  let radius =
    Float.cbrt (3.0 *. float_of_int per_subunit /. (4.0 *. Float.pi *. 0.16))
  in
  let gap = 2.05 *. radius in
  let s1 =
    subunit rng ~count:per_subunit ~radius ~center:(-.gap /. 2.0, 0.0, 0.0)
  in
  let s2 =
    subunit rng ~count:per_subunit ~radius ~center:(gap /. 2.0, 0.0, 0.0)
  in
  let metals =
    [
      { x = -.gap /. 2.0; y = 0.0; z = 0.0; charge = 2.0; kind = 0 };
      { x = -.gap /. 2.0; y = 3.1; z = 0.0; charge = 2.0; kind = 1 };
      { x = gap /. 2.0; y = 0.0; z = 0.0; charge = 2.0; kind = 0 };
      { x = gap /. 2.0; y = 3.1; z = 0.0; charge = 2.0; kind = 1 };
    ]
  in
  let base = Array.of_list (s1 @ s2 @ metals) in
  (* pad or trim to exactly n with extra surface atoms *)
  let atoms =
    if Array.length base >= n then Array.sub base 0 n
    else begin
      let extra = n - Array.length base in
      let pad =
        Array.init extra (fun _ ->
            let dx, dy, dz = Rng.in_unit_ball rng in
            {
              x = (gap /. 2.0) +. (dx *. radius);
              y = dy *. radius;
              z = dz *. radius;
              charge = Rng.range rng (-0.4) 0.4;
              kind = Rng.int rng n_kinds;
            })
      in
      Array.append base pad
    end
  in
  shuffle rng atoms;
  { atoms; name = Printf.sprintf "synthetic-SOD(N=%d,seed=%d)" n seed }

(** A uniform random gas in a cube — the null workload where pCnt barely
    varies, used by the ablation benches to show when flattening does
    {e not} pay. *)
let uniform_gas ?(seed = 7) ~n ~density () : t =
  let rng = Rng.create seed in
  let side = Float.cbrt (float_of_int n /. density) in
  let atoms =
    Array.init n (fun _ ->
        {
          x = Rng.range rng 0.0 side;
          y = Rng.range rng 0.0 side;
          z = Rng.range rng 0.0 side;
          charge = Rng.range rng (-0.4) 0.4;
          kind = Rng.int rng n_kinds;
        })
  in
  { atoms; name = Printf.sprintf "uniform-gas(N=%d)" n }

(** A two-phase droplet: half the atoms packed densely, half diffuse —
    an adversarial workload with extreme pCnt variance. *)
let droplet ?(seed = 11) ~n () : t =
  let rng = Rng.create seed in
  let dense = n / 2 in
  let r_dense = Float.cbrt (3.0 *. float_of_int dense /. (4.0 *. Float.pi *. 0.3)) in
  let r_halo = 4.0 *. r_dense in
  let atoms =
    Array.init n (fun i ->
        let r = if i < dense then r_dense else r_halo in
        let dx, dy, dz = Rng.in_unit_ball rng in
        {
          x = dx *. r;
          y = dy *. r;
          z = dz *. r;
          charge = Rng.range rng (-0.4) 0.4;
          kind = Rng.int rng n_kinds;
        })
  in
  { atoms; name = Printf.sprintf "droplet(N=%d)" n }
