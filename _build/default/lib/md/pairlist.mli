(** Pairlist construction (paper §5.1): for each atom i, the atoms within
    the cutoff radius, stored once on the lower-numbered atom (the GROMOS
    convention), so [Σ_i pCnt(i) = #pairs]. *)

type t = {
  cutoff : float;
  pcnt : int array;  (** pcnt.(i) = partners of atom i (0-based) *)
  partners : int array array;
      (** partners.(i) = 0-based partner indices, each > i (except entries
          added by [ensure_nonempty]) *)
}

val n_pairs : t -> int
val max_pcnt : t -> int
val avg_pcnt : t -> float

(** Minimum-image distance in a cubic periodic box. *)
val periodic_distance : box:float -> Molecule.atom -> Molecule.atom -> float

(** O(N²) construction with periodic boundaries — oracle, and the builder
    of truly uniform ablation workloads. *)
val brute_force_periodic : Molecule.t -> box:float -> cutoff:float -> t

(** O(N²) open-boundary construction — the test oracle. *)
val brute_force : Molecule.t -> cutoff:float -> t

(** Cell-list construction: O(N) for bounded density. *)
val build : Molecule.t -> cutoff:float -> t

(** Guarantee owner-side pCnt(i) >= 1 for every atom by appending the
    nearest neighbour to empty lists — the paper's Fig. 15 assumption and
    the Fig. 11/12 precondition (condition 2). *)
val ensure_nonempty : Molecule.t -> t -> t

(** A copy of the owner-side counts (what Figure 18 plots). *)
val owner_side_counts : t -> int array
