(** The nonbonded force routine: Lennard-Jones 12-6 plus Coulomb, the
    computation GROMOS performs per interaction pair (paper §5.1).  The
    kernels call this per pair so that the flattened and unflattened loop
    versions can be cross-checked for {e numerical} agreement, not just
    for matching call counts. *)

(** LJ parameters per atom-kind pair: [sigma] (Å) and [epsilon]
    (kJ/mol), combined by Lorentz–Berthelot rules from per-kind values. *)
let sigma_of = [| 3.0; 3.2; 3.4; 3.6; 3.8 |]
let epsilon_of = [| 0.40; 0.55; 0.70; 0.30; 0.25 |]

let coulomb_k = 138.935  (* kJ mol^-1 Å e^-2 *)

type vec = {
  fx : float;
  fy : float;
  fz : float;
}

let zero = { fx = 0.0; fy = 0.0; fz = 0.0 }
let add a b = { fx = a.fx +. b.fx; fy = a.fy +. b.fy; fz = a.fz +. b.fz }
let neg a = { fx = -.a.fx; fy = -.a.fy; fz = -.a.fz }
let norm a = Float.sqrt ((a.fx *. a.fx) +. (a.fy *. a.fy) +. (a.fz *. a.fz))

(** Force exerted on atom [a] by atom [b] (pointing from b towards a for a
    repulsive interaction). *)
let pair (a : Molecule.atom) (b : Molecule.atom) : vec =
  let dx = a.Molecule.x -. b.Molecule.x
  and dy = a.Molecule.y -. b.Molecule.y
  and dz = a.Molecule.z -. b.Molecule.z in
  let r2 = Float.max 1e-6 ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
  let r = Float.sqrt r2 in
  let sigma =
    0.5 *. (sigma_of.(a.Molecule.kind) +. sigma_of.(b.Molecule.kind))
  in
  let eps =
    Float.sqrt (epsilon_of.(a.Molecule.kind) *. epsilon_of.(b.Molecule.kind))
  in
  let sr2 = sigma *. sigma /. r2 in
  let sr6 = sr2 *. sr2 *. sr2 in
  let sr12 = sr6 *. sr6 in
  (* dV/dr terms: LJ + Coulomb; magnitude / r gives the vector scale *)
  let flj = 24.0 *. eps *. ((2.0 *. sr12) -. sr6) /. r2 in
  let fc = coulomb_k *. a.Molecule.charge *. b.Molecule.charge /. (r2 *. r) in
  let s = flj +. fc in
  { fx = s *. dx; fy = s *. dy; fz = s *. dz }

(** Reference total forces over a pairlist, sequentially, with Newton's
    third law applied on the owner-stored pair (the oracle for the kernel
    implementations). *)
let reference (m : Molecule.t) (pl : Pairlist.t) : vec array =
  let n = Molecule.n_atoms m in
  let f = Array.make n zero in
  Array.iteri
    (fun i ps ->
      Array.iter
        (fun j ->
          let fij = pair m.Molecule.atoms.(i) m.Molecule.atoms.(j) in
          f.(i) <- add f.(i) fij;
          f.(j) <- add f.(j) (neg fij))
        ps)
    pl.Pairlist.partners;
  f

(** Same, but only the owner-side accumulation (matching the paper's
    Figure 13 kernel, which updates F(At1) only). *)
let reference_owner_side (m : Molecule.t) (pl : Pairlist.t) : vec array =
  let n = Molecule.n_atoms m in
  let f = Array.make n zero in
  Array.iteri
    (fun i ps ->
      Array.iter
        (fun j ->
          f.(i) <- add f.(i) (pair m.Molecule.atoms.(i) m.Molecule.atoms.(j)))
        ps)
    pl.Pairlist.partners;
  f
