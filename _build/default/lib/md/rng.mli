(** Deterministic splitmix64 PRNG — explicit state, fixed seeds, so every
    workload is reproducible across runs. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** Uniform in [0, 1). *)
val float : t -> float

(** Uniform in [lo, hi). *)
val range : t -> float -> float -> float

(** Uniform in [0, n); raises on n <= 0. *)
val int : t -> int -> int

(** Standard normal (Box–Muller). *)
val normal : t -> float

(** Uniform point in the unit ball. *)
val in_unit_ball : t -> float * float * float
