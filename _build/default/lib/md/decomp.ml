(** Atom-to-processor decompositions (paper §5.1).

    After flattening, the running time is [max_q Σ pCnt] over each lane's
    atoms (Eq. 1″) — "only limited by the quality of our workload
    distribution."  This module provides the distributions the paper
    discusses: block, cyclic ("cut-and-stack"), and an explicitly balanced
    one (greedy longest-processing-time over the pair counts), so the
    benches can quantify how much of the remaining imbalance a smarter
    decomposition recovers. *)

type t = int array array
(** [t.(q)] lists lane [q]'s atoms (0-based) in processing order. *)

let block ~gran ~n : t =
  let per = (n + gran - 1) / gran in
  Array.init gran (fun q ->
      let lo = q * per in
      let hi = min n (lo + per) in
      Array.init (max 0 (hi - lo)) (fun i -> lo + i))

let cyclic ~gran ~n : t =
  Array.init gran (fun q ->
      let count = ((n - q - 1) / gran) + if q < n then 1 else 0 in
      Array.init (max 0 count) (fun i -> q + (i * gran)))

(** Greedy LPT: sort atoms by descending pCnt, place each on the currently
    lightest lane.  Near-optimal for makespan (4/3-approximation), which is
    exactly the Eq. 1″ bound. *)
let balanced ~gran (pl : Pairlist.t) : t =
  let n = Array.length pl.Pairlist.pcnt in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> compare pl.Pairlist.pcnt.(b) pl.Pairlist.pcnt.(a))
    order;
  let loads = Array.make gran 0 in
  let lanes = Array.make gran [] in
  Array.iter
    (fun atom ->
      let best = ref 0 in
      for q = 1 to gran - 1 do
        if loads.(q) < loads.(!best) then best := q
      done;
      lanes.(!best) <- atom :: lanes.(!best);
      loads.(!best) <- loads.(!best) + max 1 pl.Pairlist.pcnt.(atom))
    order;
  Array.map (fun l -> Array.of_list (List.rev l)) lanes

(** Per-lane pair-count sums (counting pCnt >= 1, as the flattened kernel
    pays at least one step per atom). *)
let load (pl : Pairlist.t) (d : t) : int array =
  Array.map
    (fun atoms ->
      Array.fold_left (fun s a -> s + max 1 pl.Pairlist.pcnt.(a)) 0 atoms)
    d

(** Makespan over mean load — 1.0 is perfect balance. *)
let imbalance (pl : Pairlist.t) (d : t) : float =
  let loads = load pl d in
  let total = Array.fold_left ( + ) 0 loads in
  let lanes = Array.length loads in
  if total = 0 || lanes = 0 then 1.0
  else
    let mean = float_of_int total /. float_of_int lanes in
    float_of_int (Array.fold_left max 0 loads) /. mean

(** Every atom appears exactly once. *)
let is_partition ~n (d : t) : bool =
  let seen = Array.make n 0 in
  Array.iter (Array.iter (fun a -> seen.(a) <- seen.(a) + 1)) d;
  Array.for_all (( = ) 1) seen
