(** Pairlist construction (paper §5.1).

    "For atom i, the atoms close enough to i are precomputed into an array
    partners(i, 1:pCnt(i))."  Each nonbonded pair is stored once, on the
    lower-numbered atom (the GROMOS convention), so
    [Σ_i pCnt(i) = #pairs].

    Construction uses cell lists (O(N) for bounded density); a brute-force
    O(N²) oracle is provided for the test suite. *)

type t = {
  cutoff : float;
  pcnt : int array;  (** pcnt.(i) = number of partners of atom i (0-based) *)
  partners : int array array;  (** partners.(i) = 0-based partner indices, each > i *)
}

let n_pairs t = Array.fold_left ( + ) 0 t.pcnt

let max_pcnt t = Array.fold_left max 0 t.pcnt

let avg_pcnt t =
  if Array.length t.pcnt = 0 then 0.0
  else float_of_int (n_pairs t) /. float_of_int (Array.length t.pcnt)

(** Minimum-image distance in a cubic periodic box of side [box]. *)
let periodic_distance ~box (a : Molecule.atom) (b : Molecule.atom) =
  let mi d =
    let d = Float.rem d box in
    let d = if d > box /. 2.0 then d -. box else d in
    if d < -.(box /. 2.0) then d +. box else d
  in
  let dx = mi (a.Molecule.x -. b.Molecule.x)
  and dy = mi (a.Molecule.y -. b.Molecule.y)
  and dz = mi (a.Molecule.z -. b.Molecule.z) in
  Float.sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz))

(** Brute-force O(N²) construction with periodic boundaries — used both as
    an oracle and to build truly uniform workloads (no box-edge density
    falloff) for the ablation benches. *)
let brute_force_periodic (m : Molecule.t) ~box ~cutoff : t =
  let n = Molecule.n_atoms m in
  let partners =
    Array.init n (fun i ->
        let buf = ref [] in
        for j = n - 1 downto i + 1 do
          if periodic_distance ~box m.Molecule.atoms.(i) m.Molecule.atoms.(j)
             <= cutoff
          then buf := j :: !buf
        done;
        Array.of_list !buf)
  in
  { cutoff; pcnt = Array.map Array.length partners; partners }

(** Brute-force O(N²) construction — the oracle. *)
let brute_force (m : Molecule.t) ~cutoff : t =
  let n = Molecule.n_atoms m in
  let partners =
    Array.init n (fun i ->
        let buf = ref [] in
        for j = n - 1 downto i + 1 do
          if Molecule.distance m.Molecule.atoms.(i) m.Molecule.atoms.(j)
             <= cutoff
          then buf := j :: !buf
        done;
        Array.of_list !buf)
  in
  { cutoff; pcnt = Array.map Array.length partners; partners }

(** Cell-list construction: O(N) for bounded density. *)
let build (m : Molecule.t) ~cutoff : t =
  let atoms = m.Molecule.atoms in
  let n = Array.length atoms in
  if n = 0 then { cutoff; pcnt = [||]; partners = [||] }
  else begin
    let minf f =
      Array.fold_left (fun acc a -> Float.min acc (f a)) Float.infinity atoms
    and maxf f =
      Array.fold_left
        (fun acc a -> Float.max acc (f a))
        Float.neg_infinity atoms
    in
    let x0 = minf (fun a -> a.Molecule.x)
    and y0 = minf (fun a -> a.Molecule.y)
    and z0 = minf (fun a -> a.Molecule.z) in
    let x1 = maxf (fun a -> a.Molecule.x)
    and y1 = maxf (fun a -> a.Molecule.y)
    and z1 = maxf (fun a -> a.Molecule.z) in
    let cell = Float.max cutoff 1e-6 in
    let nx = 1 + int_of_float ((x1 -. x0) /. cell)
    and ny = 1 + int_of_float ((y1 -. y0) /. cell)
    and nz = 1 + int_of_float ((z1 -. z0) /. cell) in
    let cell_of a =
      let cx = int_of_float ((a.Molecule.x -. x0) /. cell)
      and cy = int_of_float ((a.Molecule.y -. y0) /. cell)
      and cz = int_of_float ((a.Molecule.z -. z0) /. cell) in
      let cx = min cx (nx - 1) and cy = min cy (ny - 1) and cz = min cz (nz - 1) in
      (cx * ny * nz) + (cy * nz) + cz
    in
    let buckets = Array.make (nx * ny * nz) [] in
    Array.iteri
      (fun i a ->
        let c = cell_of a in
        buckets.(c) <- i :: buckets.(c))
      atoms;
    let partners =
      Array.init n (fun i ->
          let a = atoms.(i) in
          let cx = int_of_float ((a.Molecule.x -. x0) /. cell)
          and cy = int_of_float ((a.Molecule.y -. y0) /. cell)
          and cz = int_of_float ((a.Molecule.z -. z0) /. cell) in
          let cx = min cx (nx - 1) and cy = min cy (ny - 1) and cz = min cz (nz - 1) in
          let buf = ref [] in
          for dx = -1 to 1 do
            for dy = -1 to 1 do
              for dz = -1 to 1 do
                let ex = cx + dx and ey = cy + dy and ez = cz + dz in
                if ex >= 0 && ex < nx && ey >= 0 && ey < ny && ez >= 0 && ez < nz
                then
                  List.iter
                    (fun j ->
                      if j > i && Molecule.distance a atoms.(j) <= cutoff then
                        buf := j :: !buf)
                    buckets.((ex * ny * nz) + (ey * nz) + ez)
              done
            done
          done;
          Array.of_list (List.sort compare !buf))
    in
    { cutoff; pcnt = Array.map Array.length partners; partners }
  end

(** Guarantee an owner-side pCnt(i) >= 1 for every atom — the paper's
    flattened NBFORCE "takes into account that pCnt(i) >= 1 for all i"
    (Fig. 15), a precondition of the Fig. 11/12 flattening variants
    (condition 2).  Atoms whose list is empty (always at least the
    highest-numbered atom under the j > i storage convention) get their
    nearest neighbour appended, relaxing the j > i convention for those
    entries; the kernels iterate over the stored lists either way. *)
let ensure_nonempty (m : Molecule.t) (t : t) : t =
  let atoms = m.Molecule.atoms in
  let n = Array.length atoms in
  let partners = Array.map Array.copy t.partners in
  for i = 0 to n - 1 do
    if Array.length partners.(i) = 0 && n > 1 then begin
      let best = ref (-1) and bd = ref Float.infinity in
      for j = 0 to n - 1 do
        if j <> i then begin
          let d = Molecule.distance atoms.(i) atoms.(j) in
          if d < !bd then begin
            bd := d;
            best := j
          end
        end
      done;
      partners.(i) <- [| !best |]
    end
  done;
  { t with pcnt = Array.map Array.length partners; partners }

(** As stored, pcnt counts pairs on the owner side; the paper's Figure 18
    plots "pairs per atom" in this owner-side sense (the last Table 2 row
    equals Figure 18's maxima).  The force kernels iterate exactly over
    the stored lists. *)
let owner_side_counts t = Array.copy t.pcnt
