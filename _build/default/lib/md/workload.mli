(** Calibrated workloads for the evaluation: the synthetic SOD molecule
    rescaled so its average owner-side pairs/atom at 8 Å matches the
    paper's ≈ 80 (§5.4), plus memoized pairlists with the pCnt ≥ 1
    guarantee. *)

val target_avg_at_8A : float

(** Rescale a molecule toward the calibration target (≤ 3 fixed-point
    iterations). *)
val calibrate : Molecule.t -> Molecule.t

(** The calibrated synthetic SOD molecule (memoized per (seed, n);
    defaults: seed 1992, n 6968 — the paper's atom count). *)
val sod : ?seed:int -> ?n:int -> unit -> Molecule.t

(** The paper's cutoff radii for Tables 1 and 2: 4, 8, 12, 16 Å. *)
val table_cutoffs : float list

(** Figure 18's sweep range: 2 .. 20 Å. *)
val fig18_cutoffs : float list

(** Pairlist with the pCnt ≥ 1 guarantee, memoized per
    (molecule name, cutoff). *)
val pairlist : Molecule.t -> cutoff:float -> Pairlist.t
