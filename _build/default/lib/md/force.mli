(** The nonbonded force routine: Lennard-Jones 12-6 plus Coulomb — the
    per-pair computation of the paper's §5.1 kernel, used to cross-check
    the loop versions numerically. *)

val sigma_of : float array
val epsilon_of : float array
val coulomb_k : float

type vec = {
  fx : float;
  fy : float;
  fz : float;
}

val zero : vec
val add : vec -> vec -> vec
val neg : vec -> vec
val norm : vec -> float

(** Force exerted on the first atom by the second. *)
val pair : Molecule.atom -> Molecule.atom -> vec

(** Sequential reference with Newton's third law on each stored pair. *)
val reference : Molecule.t -> Pairlist.t -> vec array

(** Owner-side accumulation only (the paper's Figure 13 kernel updates
    F(At1) alone). *)
val reference_owner_side : Molecule.t -> Pairlist.t -> vec array
