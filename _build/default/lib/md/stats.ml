(** Workload statistics over pairlists — the quantities of the paper's
    Figure 18 ([pCnt_max], [pCnt_avg] per cutoff) and the speedup bound
    [pCnt_max / pCnt_avg] of §5.4. *)

type t = {
  cutoff : float;
  n_atoms : int;
  n_pairs : int;
  pcnt_max : int;
  pcnt_avg : float;
  ratio : float;  (** pcnt_max / pcnt_avg, the flattening profit bound *)
}

let of_pairlist (pl : Pairlist.t) : t =
  let pcnt_max = Pairlist.max_pcnt pl in
  let pcnt_avg = Pairlist.avg_pcnt pl in
  {
    cutoff = pl.Pairlist.cutoff;
    n_atoms = Array.length pl.Pairlist.pcnt;
    n_pairs = Pairlist.n_pairs pl;
    pcnt_max;
    pcnt_avg;
    ratio = (if pcnt_avg = 0.0 then 1.0 else float_of_int pcnt_max /. pcnt_avg);
  }

(** Figure 18's sweep: statistics for a range of cutoff radii. *)
let sweep (m : Molecule.t) ~(cutoffs : float list) : t list =
  List.map (fun c -> of_pairlist (Pairlist.build m ~cutoff:c)) cutoffs

let pp ppf s =
  Fmt.pf ppf "cutoff %4.1f A: max %5d  avg %8.2f  ratio %5.3f" s.cutoff
    s.pcnt_max s.pcnt_avg s.ratio

(** Histogram of pCnt values in [buckets] equal-width bins. *)
let histogram ?(buckets = 10) (pl : Pairlist.t) : (int * int * int) list =
  let mx = max 1 (Pairlist.max_pcnt pl) in
  let width = max 1 ((mx + buckets - 1) / buckets) in
  let counts = Array.make buckets 0 in
  Array.iter
    (fun c ->
      let b = min (buckets - 1) (c / width) in
      counts.(b) <- counts.(b) + 1)
    pl.Pairlist.pcnt;
  List.init buckets (fun b -> (b * width, ((b + 1) * width) - 1, counts.(b)))
