lib/md/workload.mli: Molecule Pairlist
