lib/md/molecule.ml: Array Float List Printf Rng
