lib/md/workload.ml: Float Hashtbl Molecule Pairlist
