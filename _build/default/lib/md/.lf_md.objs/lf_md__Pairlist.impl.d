lib/md/pairlist.ml: Array Float List Molecule
