lib/md/force.ml: Array Float Molecule Pairlist
