lib/md/rng.ml: Float Int64
