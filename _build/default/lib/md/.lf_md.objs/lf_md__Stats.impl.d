lib/md/stats.ml: Array Fmt List Molecule Pairlist
