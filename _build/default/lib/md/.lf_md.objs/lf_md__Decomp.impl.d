lib/md/decomp.ml: Array Fun List Pairlist
