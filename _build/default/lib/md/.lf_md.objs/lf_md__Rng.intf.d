lib/md/rng.mli:
