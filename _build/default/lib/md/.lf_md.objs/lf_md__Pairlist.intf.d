lib/md/pairlist.mli: Molecule
