lib/md/stats.mli: Fmt Molecule Pairlist
