lib/md/force.mli: Molecule Pairlist
