lib/md/molecule.mli: Rng
