(** Deterministic splitmix64 PRNG.

    Workload generation must be reproducible across runs and independent of
    any global random state, so the generator is explicit and seeded. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0

(** Uniform float in [lo, hi). *)
let range t lo hi = lo +. (float t *. (hi -. lo))

(** Uniform int in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int n))

(** Standard normal via Box–Muller. *)
let normal t =
  let u1 = max 1e-12 (float t) and u2 = float t in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

(** Uniform point in the unit ball, by rejection. *)
let rec in_unit_ball t =
  let x = range t (-1.0) 1.0
  and y = range t (-1.0) 1.0
  and z = range t (-1.0) 1.0 in
  if (x *. x) +. (y *. y) +. (z *. z) <= 1.0 then (x, y, z)
  else in_unit_ball t
