(** Calibrated workloads for the evaluation.

    The paper's SOD pairlist statistics (Figure 18, and the Table 2 maxima)
    anchor the synthetic molecule: we rescale the generated configuration
    so that the average owner-side pairs per atom at the 8 Å cutoff matches
    the paper's ≈ 80 (= 216 / 2.689, §5.4's pCnt_max over the
    pCnt_max/pCnt_avg ratio).  Counts scale with the local density, i.e.
    with 1/s³ under coordinate scaling by s, so two fixed-point iterations
    land within a few percent. *)

let target_avg_at_8A = 80.0

let calibrate (m : Molecule.t) : Molecule.t =
  let rec go m iters =
    if iters = 0 then m
    else
      let pl = Pairlist.build m ~cutoff:8.0 in
      let avg = Pairlist.avg_pcnt pl in
      if avg <= 0.0 then m
      else
        let s = Float.cbrt (avg /. target_avg_at_8A) in
        if Float.abs (s -. 1.0) < 0.02 then m
        else go (Molecule.scale m s) (iters - 1)
  in
  go m 3

let sod_cache : (int * int, Molecule.t) Hashtbl.t = Hashtbl.create 4

(** The calibrated synthetic SOD molecule (memoized per (seed, n)). *)
let sod ?(seed = 1992) ?(n = 6968) () : Molecule.t =
  match Hashtbl.find_opt sod_cache (seed, n) with
  | Some m -> m
  | None ->
      let m = calibrate (Molecule.sod_uncalibrated ~seed ~n ()) in
      Hashtbl.replace sod_cache (seed, n) m;
      m

(** The paper's cutoff radii for Tables 1 and 2. *)
let table_cutoffs = [ 4.0; 8.0; 12.0; 16.0 ]

(** Figure 18's sweep range. *)
let fig18_cutoffs = [ 2.0; 4.0; 6.0; 8.0; 10.0; 12.0; 14.0; 16.0; 18.0; 20.0 ]

let pairlist_cache : (string * float, Pairlist.t) Hashtbl.t = Hashtbl.create 16

(** Pairlist with the pCnt >= 1 guarantee the flattened kernels rely on,
    memoized per (molecule, cutoff). *)
let pairlist (m : Molecule.t) ~cutoff : Pairlist.t =
  let key = (m.Molecule.name, cutoff) in
  match Hashtbl.find_opt pairlist_cache key with
  | Some pl -> pl
  | None ->
      let pl = Pairlist.ensure_nonempty m (Pairlist.build m ~cutoff) in
      Hashtbl.replace pairlist_cache key pl;
      pl
