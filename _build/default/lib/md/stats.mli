(** Workload statistics (paper Figure 18 and §5.4): pCnt maxima, averages,
    and the flattening profit bound pCnt_max / pCnt_avg. *)

type t = {
  cutoff : float;
  n_atoms : int;
  n_pairs : int;
  pcnt_max : int;
  pcnt_avg : float;
  ratio : float;  (** pcnt_max / pcnt_avg *)
}

val of_pairlist : Pairlist.t -> t

(** Figure 18's sweep: statistics per cutoff radius (open boundaries). *)
val sweep : Molecule.t -> cutoffs:float list -> t list

val pp : t Fmt.t

(** Equal-width histogram of pCnt values: (lo, hi, count) per bucket. *)
val histogram : ?buckets:int -> Pairlist.t -> (int * int * int) list
