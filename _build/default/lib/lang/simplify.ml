(** Algebraic simplification of expressions: constant folding plus the
    identities that keep compiler-generated code readable
    ([e - 1 + 1 -> e], [e * 1 -> e], [e + 0 -> e], [(i - 1) + 1 -> i], ...).
    Purely syntactic and sound for the integer expressions the
    transformation passes emit. *)

open Ast

let rec simplify (e : expr) : expr =
  Ast_util.map_expr step e

and step (e : expr) : expr =
  match e with
  | EBin (op, EInt a, EInt b) -> (
      match op with
      | Add -> EInt (a + b)
      | Sub -> EInt (a - b)
      | Mul -> EInt (a * b)
      | Div when b <> 0 && a mod b = 0 -> EInt (a / b)
      | Mod when b <> 0 -> EInt (a mod b)
      | Pow when b >= 0 ->
          let rec go acc n = if n = 0 then acc else go (acc * a) (n - 1) in
          EInt (go 1 b)
      | Eq -> EBool (a = b)
      | Ne -> EBool (a <> b)
      | Lt -> EBool (a < b)
      | Le -> EBool (a <= b)
      | Gt -> EBool (a > b)
      | Ge -> EBool (a >= b)
      | _ -> e)
  | EBin (And, EBool true, x) | EBin (And, x, EBool true) -> x
  | EBin (And, EBool false, _) | EBin (And, _, EBool false) -> EBool false
  | EBin (Or, EBool false, x) | EBin (Or, x, EBool false) -> x
  | EBin (Or, EBool true, _) | EBin (Or, _, EBool true) -> EBool true
  | EUn (Not, EBool b) -> EBool (not b)
  | EUn (Not, EUn (Not, x)) -> x
  (* negated comparisons: .NOT. (a > b) -> a <= b etc. *)
  | EUn (Not, EBin (Gt, a, b)) -> EBin (Le, a, b)
  | EUn (Not, EBin (Ge, a, b)) -> EBin (Lt, a, b)
  | EUn (Not, EBin (Lt, a, b)) -> EBin (Ge, a, b)
  | EUn (Not, EBin (Le, a, b)) -> EBin (Gt, a, b)
  | EUn (Not, EBin (Eq, a, b)) -> EBin (Ne, a, b)
  | EUn (Not, EBin (Ne, a, b)) -> EBin (Eq, a, b)
  | EUn (Neg, EInt n) -> EInt (-n)
  | EUn (Neg, EUn (Neg, x)) -> x
  | EBin (Add, x, EInt 0) | EBin (Add, EInt 0, x) -> x
  | EBin (Sub, x, EInt 0) -> x
  | EBin (Mul, x, EInt 1) | EBin (Mul, EInt 1, x) -> x
  | EBin (Mul, _, EInt 0) | EBin (Mul, EInt 0, _) -> EInt 0
  | EBin (Div, x, EInt 1) -> x
  (* (x - a) + b  and  (x + a) - b  with constants *)
  | EBin (Add, EBin (Sub, x, EInt a), EInt b) ->
      if a = b then x
      else if b > a then step (EBin (Add, x, EInt (b - a)))
      else step (EBin (Sub, x, EInt (a - b)))
  | EBin (Sub, EBin (Add, x, EInt a), EInt b) ->
      if a = b then x
      else if a > b then step (EBin (Add, x, EInt (a - b)))
      else step (EBin (Sub, x, EInt (b - a)))
  | EBin (Add, EBin (Add, x, EInt a), EInt b) -> EBin (Add, x, EInt (a + b))
  | EBin (Sub, EBin (Sub, x, EInt a), EInt b) -> EBin (Sub, x, EInt (a + b))
  (* a + x - a  (common in partition arithmetic) *)
  | EBin (Sub, EBin (Add, EInt a, x), EInt b) when a = b -> x
  | _ -> e

let simplify_stmt s = Ast_util.map_stmt_exprs simplify s
let simplify_block b = List.map simplify_stmt b
