lib/lang/interp.ml: Array Ast Env Errors Float Hashtbl Intrinsics List Nd String Values
