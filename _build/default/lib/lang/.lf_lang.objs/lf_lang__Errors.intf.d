lib/lang/errors.mli: Fmt Format
