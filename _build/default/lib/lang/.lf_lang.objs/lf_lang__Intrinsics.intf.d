lib/lang/intrinsics.mli: Values
