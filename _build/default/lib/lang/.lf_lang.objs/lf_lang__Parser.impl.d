lib/lang/parser.ml: Array Ast Errors Intrinsics Lexer List Option String Token
