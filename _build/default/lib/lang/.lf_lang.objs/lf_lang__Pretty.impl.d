lib/lang/pretty.ml: Ast Float Fmt List String
