lib/lang/env.mli: Values
