lib/lang/lexer.mli: Errors Token
