lib/lang/nd.ml: Array Errors List
