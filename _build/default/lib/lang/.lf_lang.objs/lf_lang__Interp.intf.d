lib/lang/interp.mli: Ast Env Hashtbl Values
