lib/lang/errors.ml: Fmt
