lib/lang/typecheck.mli: Ast Fmt
