lib/lang/simplify.ml: Ast Ast_util List
