lib/lang/nd.mli:
