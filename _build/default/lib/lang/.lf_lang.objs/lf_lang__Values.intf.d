lib/lang/values.mli: Ast Fmt Nd
