lib/lang/token.ml: List String
