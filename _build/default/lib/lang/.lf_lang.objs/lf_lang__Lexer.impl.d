lib/lang/lexer.ml: Errors List Option String Token
