lib/lang/intrinsics.ml: Array Errors Float Fun List Nd Stdlib String Values
