lib/lang/simplify.mli: Ast
