lib/lang/values.ml: Array Ast Bool Errors Float Fmt Int Nd
