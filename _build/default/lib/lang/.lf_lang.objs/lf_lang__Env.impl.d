lib/lang/env.ml: Errors Hashtbl List Option String Values
