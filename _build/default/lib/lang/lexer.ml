(** Hand-written lexer for the pseudo-Fortran surface syntax.

    Conventions follow classic fixed-to-free-form Fortran, relaxed:
    - statements end at a newline (consecutive newlines collapse);
    - a line whose first non-blank character is [C], [c] or [!] is a comment,
      and [!] also starts a trailing comment;
    - keywords and identifiers are case-insensitive; identifiers are
      lower-cased, keywords upper-cased;
    - dotted operators ([.AND.], [.EQ.], ...) and their symbolic forms
      ([==], [<=], ...) are both accepted;
    - a line may start with a numeric statement label, which is emitted as
      the pseudo-keyword token sequence used by the parser. *)

open Token

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the beginning of the current line *)
  mutable at_line_start : bool;
}

let make src = { src; pos = 0; line = 1; bol = 0; at_line_start = true }

let position lx = Errors.pos lx.line (lx.pos - lx.bol + 1)
let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx = lx.pos <- lx.pos + 1

let newline lx =
  lx.line <- lx.line + 1;
  lx.bol <- lx.pos

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_blanks lx =
  match peek lx with
  | Some (' ' | '\t' | '\r') ->
      advance lx;
      skip_blanks lx
  | Some '&' when peek2 lx = Some '\n' ->
      (* continuation: '&' immediately before the newline joins lines *)
      advance lx;
      advance lx;
      newline lx;
      skip_blanks lx
  | _ -> ()

let skip_to_eol lx =
  let rec go () =
    match peek lx with
    | Some '\n' | None -> ()
    | Some _ ->
        advance lx;
        go ()
  in
  go ()

let lex_number lx =
  let start = lx.pos in
  let rec digits () =
    match peek lx with
    | Some c when is_digit c ->
        advance lx;
        digits ()
    | _ -> ()
  in
  digits ();
  let is_real =
    match (peek lx, peek2 lx) with
    (* a '.' starts a fraction only if not a dotted operator like 1.AND. *)
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some (')' | ',' | ' ' | '\n' | '+' | '-' | '*' | '/') | None)
      -> true
    | _ -> false
  in
  if is_real then begin
    advance lx;
    digits ();
    (match (peek lx, peek2 lx) with
    | Some ('e' | 'E' | 'd' | 'D'), Some c
      when is_digit c || c = '+' || c = '-' ->
        (* roll back unless at least one exponent digit follows *)
        let mark = lx.pos in
        advance lx;
        (match peek lx with
        | Some ('+' | '-') -> advance lx
        | _ -> ());
        let before = lx.pos in
        digits ();
        if lx.pos = before then lx.pos <- mark
    | _ -> ());
    let s =
      String.sub lx.src start (lx.pos - start)
      |> String.map (function 'd' | 'D' -> 'e' | c -> c)
    in
    FLOAT (float_of_string s)
  end
  else INT (int_of_string (String.sub lx.src start (lx.pos - start)))

let lex_word lx =
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some c when is_alnum c ->
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub lx.src start (lx.pos - start) in
  if is_keyword s then KEYWORD (String.uppercase_ascii s)
  else IDENT (String.lowercase_ascii s)

(** Dotted operators: [.AND.] [.OR.] [.NOT.] [.TRUE.] [.FALSE.] [.EQ.] [.NE.]
    [.LT.] [.LE.] [.GT.] [.GE.] *)
let lex_dotted lx =
  let p = position lx in
  advance lx;
  let start = lx.pos in
  let rec go () =
    match peek lx with
    | Some c when is_alpha c ->
        advance lx;
        go ()
    | _ -> ()
  in
  go ();
  let word = String.uppercase_ascii (String.sub lx.src start (lx.pos - start)) in
  (match peek lx with
  | Some '.' -> advance lx
  | _ -> Errors.lex_error p "unterminated dotted operator .%s" word);
  match word with
  | "AND" -> AND
  | "OR" -> OR
  | "NOT" -> NOT
  | "TRUE" -> TRUE
  | "FALSE" -> FALSE
  | "EQ" -> EQ
  | "NE" -> NE
  | "LT" -> LT
  | "LE" -> LE
  | "GT" -> GT
  | "GE" -> GE
  | w -> Errors.lex_error p "unknown dotted operator .%s." w

let rec next lx : Errors.pos * Token.t =
  skip_blanks lx;
  let p = position lx in
  (* full-line comments: upper-case 'C', '!' or '*' in the first column;
     lower-case 'c' stays available as an identifier *)
  (if lx.at_line_start then
     match peek lx with
     | Some 'C' when not (Option.fold ~none:false ~some:is_alnum (peek2 lx)) ->
         skip_to_eol lx
     | Some ('!' | '*') -> skip_to_eol lx
     | _ -> ());
  match peek lx with
  | None -> (p, EOF)
  | Some '\n' ->
      advance lx;
      newline lx;
      lx.at_line_start <- true;
      (* collapse consecutive newlines (and comment-only lines) *)
      let rec collapse () =
        skip_blanks lx;
        match peek lx with
        | Some 'C' when lx.at_line_start
                        && not (Option.fold ~none:false ~some:is_alnum (peek2 lx)) ->
            skip_to_eol lx;
            collapse ()
        | Some ('!' | '*') when lx.at_line_start ->
            skip_to_eol lx;
            collapse ()
        | Some '\n' ->
            advance lx;
            newline lx;
            collapse ()
        | _ -> ()
      in
      collapse ();
      (p, NEWLINE)
  | Some '!' ->
      skip_to_eol lx;
      next lx
  | Some c ->
      lx.at_line_start <- false;
      if is_digit c then (p, lex_number lx)
      else if is_alpha c then (p, lex_word lx)
      else if c = '.' then
        match peek2 lx with
        | Some d when is_digit d -> (p, lex_number lx)
        | _ -> (p, lex_dotted lx)
      else begin
        advance lx;
        let two expected tok_two tok_one =
          if peek lx = Some expected then (advance lx; tok_two) else tok_one
        in
        let tok =
          match c with
          | '+' -> PLUS
          | '-' -> MINUS
          | '*' -> two '*' POW STAR
          | '/' -> two '=' NE SLASH
          | '=' -> two '=' EQ ASSIGN
          | '<' -> two '=' LE LT
          | '>' -> two '=' GE GT
          | '(' -> LPAREN
          | ')' -> RPAREN
          | '[' -> LBRACKET
          | ']' -> RBRACKET
          | ',' -> COMMA
          | ':' -> COLON
          | c -> Errors.lex_error p "unexpected character %C" c
        in
        (p, tok)
      end

(** Tokenize a whole source string. *)
let tokenize src =
  let lx = make src in
  let rec go acc =
    let ((_, tok) as t) = next lx in
    if tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  match go [] with
  | (_, NEWLINE) :: rest -> rest  (* leading blank/comment lines *)
  | toks -> toks
