(** Error reporting shared by the front end, the checkers, and the
    interpreters. *)

type pos = {
  line : int;
  col : int;
}

let pos line col = { line; col }
let no_pos = { line = 0; col = 0 }

let pp_pos ppf p =
  if p.line = 0 then Fmt.string ppf "<builtin>"
  else Fmt.pf ppf "%d:%d" p.line p.col

exception Lex_error of pos * string
exception Parse_error of pos * string
exception Type_error of string
exception Runtime_error of string

let lex_error p fmt = Fmt.kstr (fun m -> raise (Lex_error (p, m))) fmt
let parse_error p fmt = Fmt.kstr (fun m -> raise (Parse_error (p, m))) fmt
let type_error fmt = Fmt.kstr (fun m -> raise (Type_error m)) fmt
let runtime_error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

(** Render any of the above exceptions as a one-line message; re-raises
    anything else. *)
let to_message = function
  | Lex_error (p, m) -> Fmt.str "lexical error at %a: %s" pp_pos p m
  | Parse_error (p, m) -> Fmt.str "parse error at %a: %s" pp_pos p m
  | Type_error m -> Fmt.str "type error: %s" m
  | Runtime_error m -> Fmt.str "runtime error: %s" m
  | e -> raise e
