(** Mutable variable environments for the interpreters. *)

type t = {
  vars : (string, Values.value ref) Hashtbl.t;
}

let create () = { vars = Hashtbl.create 64 }

let mem env name = Hashtbl.mem env.vars name

let find env name =
  match Hashtbl.find_opt env.vars name with
  | Some r -> !r
  | None -> Errors.runtime_error "undefined variable %s" name

let find_opt env name = Option.map ( ! ) (Hashtbl.find_opt env.vars name)

let set env name v =
  match Hashtbl.find_opt env.vars name with
  | Some r -> r := v
  | None -> Hashtbl.add env.vars name (ref v)

let bindings env =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) env.vars []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let copy env =
  let t = create () in
  Hashtbl.iter
    (fun k r ->
      let v =
        match !r with
        | Values.VArr a -> Values.VArr (Values.arr_copy a)
        | v -> v
      in
      Hashtbl.add t.vars k (ref v))
    env.vars;
  t

(** Equality over the variables named in [names] (deep for arrays). *)
let equal_on names a b =
  List.for_all
    (fun n ->
      match (find_opt a n, find_opt b n) with
      | Some x, Some y -> Values.equal_value x y
      | None, None -> true
      | _ -> false)
    names
