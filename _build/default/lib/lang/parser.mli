(** Recursive-descent parser for the pseudo-Fortran surface syntax
    (Section 2's dialects).  Known intrinsic names parse as calls; other
    applications are array references until the interpreter resolves
    registered functions.  Raises [Errors.Parse_error] with a source
    position on malformed input. *)

(** Parse a complete program (with or without a PROGRAM header; the
    default name is ["main"]). *)
val program_of_string : string -> Ast.program

(** Parse a statement block (no declarations). *)
val block_of_string : string -> Ast.block

(** Parse a single expression. *)
val expr_of_string : string -> Ast.expr
