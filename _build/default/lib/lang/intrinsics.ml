(** Intrinsic functions shared by the sequential interpreter and the SIMD
    VM front end: the Fortran 90 subset used by the paper's codes. *)

open Values

let numeric2 name fi fr a b =
  match (a, b) with
  | VInt x, VInt y -> VInt (fi x y)
  | (VInt _ | VReal _), (VInt _ | VReal _) ->
      VReal (fr (as_float a) (as_float b))
  | _ ->
      Errors.runtime_error "%s: expected numeric scalars, got %s and %s" name
        (type_name a) (type_name b)

let fold1 name f d =
  if Array.length d = 0 then Errors.runtime_error "%s of empty array" name
  else Array.fold_left f d.(0) (Array.sub d 1 (Array.length d - 1))

let fold_numeric name fi fr = function
  | AInt a -> VInt (fold1 name fi (Nd.to_array a))
  | AReal a -> VReal (fold1 name fr (Nd.to_array a))
  | a ->
      Errors.runtime_error "%s: expected numeric array, got %s" name
        (type_name (VArr a))

let names =
  [ "max"; "min"; "abs"; "mod"; "sqrt"; "exp"; "real"; "int"; "nint";
    "any"; "all"; "count"; "maxval"; "minval"; "sum"; "size"; "merge";
    "vector" ]

let is_intrinsic name = List.mem (String.lowercase_ascii name) names

(** Apply intrinsic [name]; [None] if [name] is not an intrinsic. *)
let apply name (args : value list) : value option =
  let nargs = List.length args in
  let arity n =
    if nargs <> n then
      Errors.runtime_error "%s expects %d argument(s), got %d" name n nargs
  in
  let the_arr () =
    arity 1;
    as_arr (List.hd args)
  in
  match (String.lowercase_ascii name, args) with
  | "max", (_ :: _ :: _ as args) ->
      Some
        (List.fold_left
           (fun acc v -> numeric2 "max" Stdlib.max Float.max acc v)
           (List.hd args) (List.tl args))
  | "min", (_ :: _ :: _ as args) ->
      Some
        (List.fold_left
           (fun acc v -> numeric2 "min" Stdlib.min Float.min acc v)
           (List.hd args) (List.tl args))
  | ("max" | "maxval"), [ VArr a ] -> Some (fold_numeric "maxval" max Float.max a)
  | ("min" | "minval"), [ VArr a ] -> Some (fold_numeric "minval" min Float.min a)
  | ("max" | "maxval" | "min" | "minval"), [ ((VInt _ | VReal _) as v) ] ->
      Some v
  | "abs", [ VInt n ] -> Some (VInt (abs n))
  | "abs", [ VReal f ] -> Some (VReal (Float.abs f))
  | "mod", [ a; b ] ->
      Some
        (numeric2 "mod"
           (fun x y ->
             if y = 0 then Errors.runtime_error "MOD by zero" else x mod y)
           (fun x y -> Float.rem x y)
           a b)
  | "sqrt", [ v ] -> Some (VReal (Float.sqrt (as_float v)))
  | "exp", [ v ] -> Some (VReal (Float.exp (as_float v)))
  | "real", [ v ] -> Some (VReal (as_float v))
  | "int", [ v ] -> Some (VInt (int_of_float (Float.trunc (as_float v))))
  | "nint", [ v ] -> Some (VInt (int_of_float (Float.round (as_float v))))
  | ("any" | "all"), [ VBool b ] -> Some (VBool b)
  | "count", [ VBool b ] -> Some (VInt (if b then 1 else 0))
  | "any", _ -> (
      match the_arr () with
      | ABool a -> Some (VBool (Nd.exists Fun.id a))
      | a ->
          Errors.runtime_error "any: expected LOGICAL array, got %s"
            (type_name (VArr a)))
  | "all", _ -> (
      match the_arr () with
      | ABool a -> Some (VBool (Nd.for_all Fun.id a))
      | a ->
          Errors.runtime_error "all: expected LOGICAL array, got %s"
            (type_name (VArr a)))
  | "count", _ -> (
      match the_arr () with
      | ABool a ->
          Some (VInt (Nd.fold (fun n b -> if b then n + 1 else n) 0 a))
      | a ->
          Errors.runtime_error "count: expected LOGICAL array, got %s"
            (type_name (VArr a)))
  | "sum", [ VArr a ] ->
      Some
        (match a with
        | AInt a -> VInt (Nd.fold ( + ) 0 a)
        | AReal a -> VReal (Nd.fold ( +. ) 0.0 a)
        | ABool _ -> Errors.runtime_error "sum of LOGICAL array")
  (* scalar degenerations: on one processor the reductions are the
     identity, which keeps SIMDized code meaningful sequentially *)
  | "sum", [ (VInt _ | VReal _) as v ] -> Some v
  | "size", [ VArr a ] -> Some (VInt (arr_size a))
  | "size", [ VArr a; VInt d ] ->
      let dims = arr_dims a in
      if d < 1 || d > Array.length dims then
        Errors.runtime_error "size: dimension %d out of range" d
      else Some (VInt dims.(d - 1))
  | "merge", [ t; f; VBool c ] -> Some (if c then t else f)
  | "vector", items ->
      (* [a, b, lo:hi, ...] literal; items are scalars or AInt ranges *)
      let expand = function
        | VInt n -> [ n ]
        | VArr (AInt a) -> Array.to_list (Nd.to_array a)
        | v ->
            Errors.runtime_error "vector literal: bad element %s" (type_name v)
      in
      let elems = List.concat_map expand items in
      Some (VArr (AInt (Nd.of_array (Array.of_list elems))))
  | _ -> None
