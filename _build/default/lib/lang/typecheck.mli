(** Static checking of pseudo-Fortran programs: types, array ranks, and
    the F90simd plural/front-end discipline of Section 2.  Undeclared
    scalars follow Fortran's implicit rule (i..n INTEGER, others REAL) and
    produce warnings. *)

type ty =
  | Int
  | Real
  | Logical

val ty_of_dtype : Ast.dtype -> ty
val ty_to_string : ty -> string

type severity =
  | Error
  | Warning

type diagnostic = {
  severity : severity;
  message : string;
}

val pp_diagnostic : diagnostic Fmt.t

type report = {
  errors : diagnostic list;
  warnings : diagnostic list;
}

(** No errors (warnings allowed). *)
val ok : report -> bool

val pp_report : report Fmt.t

(** Check a program.  [funcs] declares external functions and their result
    types; [params] pre-declares driver-seeded scalars; [simd] enforces
    the plural discipline (default: on iff the program declares PLURAL
    variables).  The predefined plural [iproc] is always in scope. *)
val check_program :
  ?funcs:(string * ty) list ->
  ?params:(string * ty) list ->
  ?simd:bool ->
  Ast.program ->
  report

(** Check a bare block (everything implicit). *)
val check_block_standalone :
  ?funcs:(string * ty) list -> ?simd:bool -> Ast.block -> report
