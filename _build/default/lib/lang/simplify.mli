(** Algebraic simplification: constant folding and the identities that
    keep compiler-generated code readable ([e - 1 + 1 → e], [e * 1 → e],
    ...).  Sound for the integer expressions the transformation passes
    emit (in particular, inexact integer division is never folded). *)

val simplify : Ast.expr -> Ast.expr
val simplify_stmt : Ast.stmt -> Ast.stmt
val simplify_block : Ast.block -> Ast.block
