(** Column-major n-dimensional arrays with Fortran-style 1-based indexing.

    Used as the storage for array values in the interpreters.  Indexing is
    1-based and column-major (first index varies fastest), matching the
    Fortran memory model the paper's layout discussion (Section 5.2)
    depends on. *)

type 'a t = {
  dims : int array;
  data : 'a array;
}

let size_of_dims dims = Array.fold_left ( * ) 1 dims

let create dims fill =
  if Array.exists (fun d -> d < 0) dims then
    Errors.runtime_error "negative array dimension";
  { dims; data = Array.make (size_of_dims dims) fill }

let init dims f =
  let n = size_of_dims dims in
  if n = 0 then { dims; data = [||] }
  else begin
    let rank = Array.length dims in
    let idx = Array.make rank 1 in
    let next () =
      let rec bump k =
        if k < rank then
          if idx.(k) < dims.(k) then idx.(k) <- idx.(k) + 1
          else begin
            idx.(k) <- 1;
            bump (k + 1)
          end
      in
      bump 0
    in
    let data =
      Array.init n (fun i ->
          let v = f (Array.copy idx) in
          if i < n - 1 then next ();
          v)
    in
    { dims; data }
  end

let of_array data = { dims = [| Array.length data |]; data = Array.copy data }

let rank a = Array.length a.dims
let dims a = Array.copy a.dims
let size a = Array.length a.data

let linear_index a idx =
  let rank = Array.length a.dims in
  if Array.length idx <> rank then
    Errors.runtime_error "rank mismatch: %d indices for rank-%d array"
      (Array.length idx) rank;
  let off = ref 0 and stride = ref 1 in
  for k = 0 to rank - 1 do
    let i = idx.(k) in
    if i < 1 || i > a.dims.(k) then
      Errors.runtime_error "index %d out of bounds 1..%d in dimension %d" i
        a.dims.(k) (k + 1);
    off := !off + ((i - 1) * !stride);
    stride := !stride * a.dims.(k)
  done;
  !off

let get a idx = a.data.(linear_index a idx)
let set a idx v = a.data.(linear_index a idx) <- v

(** Flat (column-major) access, 0-based; used by the SIMD layouts. *)
let get_flat a i = a.data.(i)
let set_flat a i v = a.data.(i) <- v

let fill a v = Array.fill a.data 0 (Array.length a.data) v
let copy a = { dims = Array.copy a.dims; data = Array.copy a.data }
let map f a = { dims = Array.copy a.dims; data = Array.map f a.data }

let map2 f a b =
  if a.dims <> b.dims then Errors.runtime_error "shape mismatch in map2";
  { dims = Array.copy a.dims; data = Array.map2 f a.data b.data }

let fold f acc a = Array.fold_left f acc a.data
let iter f a = Array.iter f a.data
let iteri_flat f a = Array.iteri f a.data
let exists f a = Array.exists f a.data
let for_all f a = Array.for_all f a.data
let to_array a = Array.copy a.data

let equal eq a b =
  a.dims = b.dims
  && Array.for_all2 eq a.data b.data

(** [slice a spec] where each [spec] element is [`One i] (drops the
    dimension) or [`Range (lo, hi)] (keeps it).  Returns a fresh array. *)
let slice a spec =
  let rank = Array.length a.dims in
  if List.length spec <> rank then
    Errors.runtime_error "rank mismatch in slice";
  let spec = Array.of_list spec in
  let out_dims =
    Array.to_list spec
    |> List.filter_map (function
         | `One _ -> None
         | `Range (lo, hi) -> Some (max 0 (hi - lo + 1)))
    |> Array.of_list
  in
  let out_dims = if Array.length out_dims = 0 then [| 1 |] else out_dims in
  init out_dims (fun out_idx ->
      let k = ref 0 in
      let idx =
        Array.map
          (function
            | `One i -> i
            | `Range (lo, _) ->
                let v = lo + out_idx.(!k) - 1 in
                incr k;
                v)
          spec
      in
      get a idx)

(** Assign [src] (a fresh array of matching selected shape, or a broadcast
    via [`Scalar]) into the selected region of [a]. *)
let blit_slice a spec src =
  let spec = Array.of_list spec in
  let sel_dims =
    Array.to_list spec
    |> List.filter_map (function
         | `One _ -> None
         | `Range (lo, hi) -> Some (max 0 (hi - lo + 1)))
    |> Array.of_list
  in
  let n = size_of_dims sel_dims in
  (match src with
  | `Array s when size s <> n ->
      Errors.runtime_error "shape mismatch in section assignment: %d vs %d"
        (size s) n
  | _ -> ());
  let rank = Array.length sel_dims in
  let out_idx = Array.make rank 1 in
  for flat = 0 to n - 1 do
    let k = ref 0 in
    let idx =
      Array.map
        (function
          | `One i -> i
          | `Range (lo, _) ->
              let v = lo + out_idx.(!k) - 1 in
              incr k;
              v)
        spec
    in
    (match src with
    | `Scalar v -> set a idx v
    | `Array s -> set a idx (get_flat s flat));
    let rec bump k =
      if k < rank then
        if out_idx.(k) < sel_dims.(k) then out_idx.(k) <- out_idx.(k) + 1
        else begin
          out_idx.(k) <- 1;
          bump (k + 1)
        end
    in
    bump 0
  done
