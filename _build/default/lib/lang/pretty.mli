(** Pretty-printer producing parseable pseudo-Fortran:
    [Parser.block_of_string (block_to_string b)] re-produces [b] up to
    comments (property-tested). *)

val dtype_to_string : Ast.dtype -> string
val pp_expr : Ast.expr Fmt.t
val expr_to_string : Ast.expr -> string
val pp_lvalue : Ast.lvalue Fmt.t
val pp_do_control : Ast.do_control Fmt.t

(** Print one statement at the given indentation depth. *)
val pp_stmt : int -> Ast.stmt Fmt.t

val pp_block : int -> Ast.block Fmt.t
val pp_decl : Ast.decl Fmt.t
val distribution_to_string : Ast.distribution -> string
val pp_directive : Ast.directive Fmt.t
val pp_program : Ast.program Fmt.t
val program_to_string : Ast.program -> string
val block_to_string : Ast.block -> string
val stmt_to_string : Ast.stmt -> string
