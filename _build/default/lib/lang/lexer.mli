(** Hand-written lexer for the pseudo-Fortran surface syntax: newline-
    terminated statements, upper-case-[C]/[!]/[*] comments, [&]-before-
    newline continuations, case-insensitive words, dotted and symbolic
    operators. *)

type t

val make : string -> t

(** Next token with its source position; returns [EOF] forever at end. *)
val next : t -> Errors.pos * Token.t

(** Tokenize a whole source string (ends with [EOF]; a leading blank/
    comment region produces no [NEWLINE]). *)
val tokenize : string -> (Errors.pos * Token.t) list
