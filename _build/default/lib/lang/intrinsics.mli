(** Intrinsic functions shared by the sequential interpreter and the SIMD
    VM: the Fortran 90 subset the paper's codes use (MAX, MIN, ABS, MOD,
    SQRT, ANY, ALL, COUNT, MAXVAL, MINVAL, SUM, SIZE, MERGE, and the
    [vector] literal constructor). *)

val names : string list
val is_intrinsic : string -> bool

(** Apply an intrinsic to evaluated arguments; [None] when the name is not
    an intrinsic.  Raises [Errors.Runtime_error] on arity or operand
    errors. *)
val apply : string -> Values.value list -> Values.value option
