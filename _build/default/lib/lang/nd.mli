(** Column-major n-dimensional arrays with Fortran-style 1-based indexing
    (first index varies fastest — the memory model behind the paper's
    layout discussion, §5.2). *)

type 'a t = {
  dims : int array;
  data : 'a array;
}

val create : int array -> 'a -> 'a t

(** [init dims f] calls [f] with each 1-based index vector, first index
    fastest. *)
val init : int array -> (int array -> 'a) -> 'a t

val of_array : 'a array -> 'a t
val rank : 'a t -> int
val dims : 'a t -> int array
val size : 'a t -> int

(** 1-based multi-index access; raises [Errors.Runtime_error] on bounds or
    rank violations. *)
val get : 'a t -> int array -> 'a

val set : 'a t -> int array -> 'a -> unit

(** Flat column-major access, 0-based. *)
val get_flat : 'a t -> int -> 'a

val set_flat : 'a t -> int -> 'a -> unit
val fill : 'a t -> 'a -> unit
val copy : 'a t -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t

(** Raises on shape mismatch. *)
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val iter : ('a -> unit) -> 'a t -> unit
val iteri_flat : (int -> 'a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

(** [slice a spec]: [`One i] drops the dimension, [`Range (lo, hi)] keeps
    it.  Fresh result. *)
val slice : 'a t -> [ `One of int | `Range of int * int ] list -> 'a t

(** Assign a scalar broadcast or a matching-size source into the selected
    region. *)
val blit_slice :
  'a t ->
  [ `One of int | `Range of int * int ] list ->
  [ `Array of 'a t | `Scalar of 'a ] ->
  unit
