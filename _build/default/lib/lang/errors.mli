(** Error reporting shared by the front end, checkers, and interpreters. *)

type pos = {
  line : int;
  col : int;
}

val pos : int -> int -> pos
val no_pos : pos
val pp_pos : pos Fmt.t

exception Lex_error of pos * string
exception Parse_error of pos * string
exception Type_error of string
exception Runtime_error of string

(** The raising helpers take format strings. *)

val lex_error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val parse_error : pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Render any of the above exceptions as a one-line message; re-raises
    anything else. *)
val to_message : exn -> string
