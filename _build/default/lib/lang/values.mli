(** Runtime values of the sequential interpreter (and, per lane, of the
    SIMD VM). *)

type arr =
  | AInt of int Nd.t
  | AReal of float Nd.t
  | ABool of bool Nd.t

type value =
  | VInt of int
  | VReal of float
  | VBool of bool
  | VArr of arr

val pp : value Fmt.t
val to_string : value -> string
val type_name : value -> string

(** Coercions raise [Errors.Runtime_error] on mismatch; [as_float] accepts
    integers, [as_int] accepts integral reals. *)

val as_int : value -> int
val as_float : value -> float
val as_bool : value -> bool
val as_arr : value -> arr

val arr_size : arr -> int
val arr_dims : arr -> int array
val arr_get : arr -> int array -> value
val arr_set : arr -> int array -> value -> unit
val arr_get_flat : arr -> int -> value
val arr_set_flat : arr -> int -> value -> unit
val arr_fill : arr -> value -> unit
val arr_copy : arr -> arr

(** Zero-initialized array of the given element type and dimensions. *)
val alloc_arr : Ast.dtype -> int array -> arr

val zero_of : Ast.dtype -> value

(** Deep equality; reals compare with a small absolute tolerance. *)
val equal_value : value -> value -> bool
