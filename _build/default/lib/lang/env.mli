(** Mutable variable environments for the interpreters. *)

type t

val create : unit -> t
val mem : t -> string -> bool

(** Raises [Errors.Runtime_error] when unbound. *)
val find : t -> string -> Values.value

val find_opt : t -> string -> Values.value option
val set : t -> string -> Values.value -> unit

(** All bindings, name-sorted. *)
val bindings : t -> (string * Values.value) list

(** Deep copy (arrays included). *)
val copy : t -> t

(** Equality over the named variables (deep for arrays, approximate for
    reals). *)
val equal_on : string list -> t -> t -> bool
