(** Tokens of the pseudo-Fortran surface syntax. *)

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string  (** lower-cased; identifiers are case-insensitive *)
  | KEYWORD of string  (** upper-cased reserved word *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | POW  (** ** *)
  | ASSIGN  (** = *)
  | EQ  (** == or .EQ. *)
  | NE
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | NEWLINE
  | EOF

let keywords =
  [ "PROGRAM"; "END"; "INTEGER"; "REAL"; "LOGICAL"; "PLURAL"; "DIMENSION";
    "DO"; "ENDDO"; "WHILE"; "ENDWHILE"; "REPEAT"; "UNTIL"; "IF"; "THEN";
    "ELSE"; "ELSEIF"; "ENDIF"; "FORALL"; "ENDFORALL"; "WHERE"; "ELSEWHERE";
    "ENDWHERE"; "CALL"; "GOTO"; "CONTINUE"; "DECOMPOSITION"; "ALIGN"; "WITH";
    "DISTRIBUTE"; "BLOCK"; "CYCLIC" ]

let is_keyword s = List.mem (String.uppercase_ascii s) keywords

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KEYWORD s -> s
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | POW -> "**"
  | ASSIGN -> "="
  | EQ -> "=="
  | NE -> "/="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | AND -> ".AND."
  | OR -> ".OR."
  | NOT -> ".NOT."
  | TRUE -> ".TRUE."
  | FALSE -> ".FALSE."
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | NEWLINE -> "<newline>"
  | EOF -> "<eof>"
