(** The paper's EXAMPLE loop nest (§3) as executable trace kernels,
    reproducing the execution traces of Figures 4 and 6. *)

type cell = (int * int) option
(** (local outer index, inner index) at that time step; [None] = idle. *)

type trace = {
  label : string;
  cells : cell array array;  (** [cells.(processor).(time)] *)
  time : int;
}

(** Per-processor streams of (local_i, j) pairs under a block
    decomposition; P must divide the length of [l]. *)
val pair_streams : l:int array -> p:int -> (int * int) list array

(** Figure 4: the MIMD execution trace — [max_p Σ L] steps (Eq. 1). *)
val mimd_trace : l:int array -> p:int -> trace

(** The flattened SIMD trace: identical occupancy to MIMD. *)
val flattened_trace : l:int array -> p:int -> trace

(** Figure 6: the unflattened SIMDized trace — [Σ_i max_p L] steps
    (Eq. 2), with idle slots. *)
val simd_unflattened_trace : l:int array -> p:int -> trace

(** The paper's concrete data: K = 8, L = 4,1,2,1,1,3,1,3 (P = 2). *)
val paper_l : int array

val paper_mimd : unit -> trace
val paper_simd : unit -> trace
val paper_flattened : unit -> trace

(** Render in the paper's tabular style. *)
val pp : trace Fmt.t

val to_string : trace -> string
