lib/kernels/nbforce.mli: Lf_md Lf_simd Machine
