lib/kernels/example_kernel.ml: Array Fmt List Option
