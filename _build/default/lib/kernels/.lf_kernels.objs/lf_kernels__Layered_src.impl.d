lib/kernels/layered_src.ml: Array Ast Errors Lf_lang Lf_md Lf_simd Parser Values
