lib/kernels/nbforce_src.ml: Array Ast Env Errors Interp Lf_lang Lf_md Lf_simd Nd Parser Values
