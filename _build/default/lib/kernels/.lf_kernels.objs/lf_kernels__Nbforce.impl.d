lib/kernels/nbforce.ml: Array Fun Layout Lf_md Lf_simd List Machine
