lib/kernels/example_kernel.mli: Fmt
