(** Native lockstep simulations of the three NBFORCE loop versions of the
    paper's §5.3 — the engines behind Tables 1 and 2:

    - [L1] ("Lu¹"): unflattened, selecting the [Lrs] memory layers in use
      (Figure 17 with explicit 1:Lrs subscripts);
    - [L2] ("Lu²"): unflattened, sweeping all [maxLrs] layers;
    - [Flat] ("Lf"): flattened (Figure 16) — each lane walks its own
      (atom, partner) stream via indirect addressing.

    Each kernel walks the same pairlist, accumulates real Lennard-Jones +
    Coulomb forces (so numerical agreement across versions is testable),
    counts force-routine steps, and prices them with the machine cost
    model.  Atoms are laid out over the [Gran] lanes by the machine's
    layout (cut-and-stack on the DECmpp, blockwise on the CM-2). *)

open Lf_simd

type variant =
  | L1
  | L2
  | Flat

let variant_to_string = function
  | L1 -> "Lu1"
  | L2 -> "Lu2"
  | Flat -> "Lf"

type result = {
  variant : variant;
  machine : Machine.t;
  n : int;  (** atoms *)
  nmax : int;  (** compiled-for maximum (sizes maxLrs) *)
  lrs : int;
  max_lrs : int;
  force_steps : int;
      (** vector invocations of the force routine — the dominant cost *)
  table2_count : int;
      (** Table 2 normalization: Lu = maxPCnt * Lrs; Lf = force_steps *)
  useful_pairs : int;  (** Σ pCnt — identical across variants *)
  busy_lanes : int;  (** lane-steps that computed a real pair *)
  time : float;  (** modeled seconds on [machine] *)
  forces : Lf_md.Force.vec array;  (** accumulated owner-side forces *)
}

let utilization r =
  if r.force_steps = 0 then 1.0
  else
    float_of_int r.busy_lanes
    /. (float_of_int r.force_steps *. float_of_int r.machine.Machine.gran)

(** Lane assignment: [lane_atoms.(q)] lists the (0-based) atoms of lane
    [q] in layer order; derived from the machine layout. *)
let lane_atoms (m : Machine.t) ~n : int array array =
  Layout.partition m.Machine.layout ~gran:m.Machine.gran ~n
  |> Array.map (fun l -> Array.of_list (List.map (fun g -> g - 1) l))

let max_pcnt (pl : Lf_md.Pairlist.t) = Lf_md.Pairlist.max_pcnt pl

(** Shared force accumulation for one (atom, partner-rank) slot. *)
let do_pair (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) forces atom pr =
  let j = pl.Lf_md.Pairlist.partners.(atom).(pr - 1) in
  let f =
    Lf_md.Force.pair mol.Lf_md.Molecule.atoms.(atom)
      mol.Lf_md.Molecule.atoms.(j)
  in
  forces.(atom) <- Lf_md.Force.add forces.(atom) f

(** The unflattened kernels.  One vector force step per (pr, layer); a
    lane is busy in that step when its atom in that layer exists and has
    at least [pr] partners (the WHERE (pCnt .GE. pr) mask of Figure 17). *)
let run_unflattened ?(compute_forces = true) (variant : variant)
    (m : Machine.t) (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) ~nmax :
    result =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let lanes = lane_atoms m ~n in
  let lrs = Machine.layers m ~n in
  let max_lrs = Machine.layers m ~n:nmax in
  let sweep_layers = match variant with L1 -> lrs | _ -> max_lrs in
  let maxp = max_pcnt pl in
  let forces = Array.make n Lf_md.Force.zero in
  let busy = ref 0 in
  let steps = ref 0 in
  for pr = 1 to maxp do
    for layer = 1 to sweep_layers do
      incr steps;
      Array.iter
        (fun atoms ->
          if layer <= Array.length atoms then begin
            let a = atoms.(layer - 1) in
            if pl.Lf_md.Pairlist.pcnt.(a) >= pr then begin
              incr busy;
              if compute_forces then do_pair mol pl forces a pr
            end
          end)
        lanes
    done
  done;
  (* cost model: L2 sweeps maxLrs layers at the base step cost; L1 pays a
     per-layer activity check, and on the CM-2 still cycles through all
     maxLrs layers (paper §5.3) *)
  let time =
    match variant with
    | L2 -> float_of_int (maxp * max_lrs) *. m.Machine.cost_unflat_step
    | L1 ->
        let layers_touched =
          if m.Machine.l1_touches_all_layers then max_lrs else lrs
        in
        float_of_int (maxp * layers_touched)
        *. (m.Machine.cost_unflat_step +. m.Machine.cost_layer_check)
        +. (float_of_int (maxp * max_lrs) *. m.Machine.cost_l1_frontend)
    | Flat -> assert false
  in
  {
    variant;
    machine = m;
    n;
    nmax;
    lrs;
    max_lrs;
    force_steps = !steps;
    table2_count = maxp * lrs;
    useful_pairs = Lf_md.Pairlist.n_pairs pl;
    busy_lanes = !busy;
    time;
    forces;
  }

(** The flattened kernel (Figure 16): each lane holds a cursor
    (layer, pr) into its own atom stream and advances independently; one
    vector force step per iteration of the [DO WHILE (ANY(l .LE. Lrs))]
    loop.  Requires pCnt >= 1 (the paper's stated assumption).

    Atom-to-lane assignment is cyclic on {e both} machines: Figure 16's
    indirection ([at1 = [1:P]] ... [at1 = at1 + P]) walks atoms
    cut-and-stack-wise by construction, independent of the physical array
    layout -- indirect addressing is exactly what frees the kernel from the
    layout (the paper's "generalization of substituting direct addressing
    with indirect addressing", section 7).  This also neutralizes the
    systematic imbalance a blockwise split would get from the owner-side
    (j > i) pair storage, whose per-atom counts decline with the atom
    index. *)
let run_flat ?(compute_forces = true) ?(indirect = true) ?partition
    (m : Machine.t) (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) ~nmax :
    result =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let lanes =
    match partition with
    | Some p -> p
    | None ->
        if indirect then
          lane_atoms { m with Machine.layout = Machine.Cut_and_stack } ~n
        else lane_atoms m ~n
  in
  let lrs = Machine.layers m ~n in
  let max_lrs = Machine.layers m ~n:nmax in
  let gran = m.Machine.gran in
  let forces = Array.make n Lf_md.Force.zero in
  let layer = Array.make gran 0 in  (* 0-based cursor into lanes.(q) *)
  let pr = Array.make gran 1 in
  let busy = ref 0 and steps = ref 0 in
  let live q = layer.(q) < Array.length lanes.(q) in
  let lanes_idx = Array.init gran Fun.id in
  let any_live = ref (Array.exists live lanes_idx) in
  while !any_live do
    incr steps;
    for q = 0 to gran - 1 do
      if live q then begin
        let a = lanes.(q).(layer.(q)) in
        incr busy;
        if compute_forces then do_pair mol pl forces a pr.(q);
        if pr.(q) >= pl.Lf_md.Pairlist.pcnt.(a) then begin
          layer.(q) <- layer.(q) + 1;
          pr.(q) <- 1
        end
        else pr.(q) <- pr.(q) + 1
      end
    done;
    any_live := Array.exists live lanes_idx
  done;
  {
    variant = Flat;
    machine = m;
    n;
    nmax;
    lrs;
    max_lrs;
    force_steps = !steps;
    table2_count = !steps;
    useful_pairs = Lf_md.Pairlist.n_pairs pl;
    busy_lanes = !busy;
    time = float_of_int !steps *. m.Machine.cost_flat_step;
    forces;
  }

let run ?compute_forces (variant : variant) (m : Machine.t)
    (mol : Lf_md.Molecule.t) (pl : Lf_md.Pairlist.t) ~nmax : result =
  match variant with
  | L1 | L2 -> run_unflattened ?compute_forces variant m mol pl ~nmax
  | Flat -> run_flat ?compute_forces m mol pl ~nmax

(** The analytical flattened step count, Eq. 1′:
    [max_q Σ_{atoms of q} pCnt] — tested equal to [run_flat]'s count. *)
let flat_steps_bound ?(indirect = true) (m : Machine.t)
    (pl : Lf_md.Pairlist.t) : int =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  (if indirect then
     lane_atoms { m with Machine.layout = Machine.Cut_and_stack } ~n
   else lane_atoms m ~n)
  |> Array.fold_left
       (fun acc atoms ->
         max acc
           (Array.fold_left
              (fun s a -> s + max 1 pl.Lf_md.Pairlist.pcnt.(a))
              0 atoms))
       0

(** Sequential (Sparc 2) baseline: one pair at a time. *)
let run_sequential (m : Machine.t) (mol : Lf_md.Molecule.t)
    (pl : Lf_md.Pairlist.t) : result =
  let n = Array.length pl.Lf_md.Pairlist.pcnt in
  let forces = Array.make n Lf_md.Force.zero in
  let steps = ref 0 in
  for a = 0 to n - 1 do
    for pr = 1 to pl.Lf_md.Pairlist.pcnt.(a) do
      incr steps;
      do_pair mol pl forces a pr
    done
  done;
  {
    variant = Flat;
    machine = m;
    n;
    nmax = n;
    lrs = n;
    max_lrs = n;
    force_steps = !steps;
    table2_count = !steps;
    useful_pairs = Lf_md.Pairlist.n_pairs pl;
    busy_lanes = !steps;
    time = float_of_int !steps *. m.Machine.cost_unflat_step;
    forces;
  }
