(** The paper's EXAMPLE loop nest (§3) as executable trace kernels.

    [K] outer iterations with inner trip counts [L(i)], run on [P]
    processors under a block decomposition.  Three execution disciplines
    reproduce the paper's traces:

    - {b MIMD} (Figure 4): every processor walks its own (i, j) pairs
      asynchronously; finishes in [max_p Σ L] steps (Eq. 1).
    - {b unflattened SIMD} (Figure 6): lockstep over the global (i, j)
      grid SIMDized to [max_p L(i)] inner steps per outer iteration;
      finishes in [Σ_i max_p L] steps (Eq. 2) with idle slots.
    - {b flattened SIMD}: lockstep, but each processor advances through
      its own pair stream — the same occupancy as MIMD (Eq. 1′). *)

type cell = (int * int) option
(** (i, j) the processor executes at that time step, [None] = idle;
    [i] is the processor-local outer index (matching the paper's traces). *)

type trace = {
  label : string;
  cells : cell array array;  (** [cells.(p).(t)] *)
  time : int;
}

let total_time (cells : cell array array) =
  Array.fold_left (fun m row -> max m (Array.length row)) 0 cells

(** Per-processor streams of (local_i, j) pairs under a block
    decomposition of [l] (paper: L(1:4) on processor 1, L(5:8) on 2). *)
let pair_streams ~(l : int array) ~(p : int) : (int * int) list array =
  let k = Array.length l in
  if k mod p <> 0 then invalid_arg "Example_kernel: P must divide K";
  let per = k / p in
  Array.init p (fun proc ->
      List.concat
        (List.init per (fun i ->
             let gi = (proc * per) + i in
             List.init l.(gi) (fun j -> (i + 1, j + 1)))))

let pad_to n (row : cell list) : cell array =
  Array.init n (fun t -> List.nth_opt row t |> Option.join)

(** Figure 4: the MIMD (and flattened SIMD) execution trace. *)
let mimd_trace ~l ~p : trace =
  let streams = pair_streams ~l ~p in
  let rows = Array.map (fun s -> List.map Option.some s) streams in
  let time = Array.fold_left (fun m r -> max m (List.length r)) 0 rows in
  { label = "MIMD"; cells = Array.map (pad_to time) rows; time }

(** The flattened SIMD trace: identical occupancy to MIMD — each lane
    consumes its own pair stream, one pair per lockstep cycle. *)
let flattened_trace ~l ~p : trace =
  { (mimd_trace ~l ~p) with label = "flattened SIMD" }

(** Figure 6: the unflattened (SIMDized) trace.  Time is grouped by the
    front-end outer iteration; each group runs [max_p L] cycles and lanes
    with fewer inner iterations idle. *)
let simd_unflattened_trace ~l ~p : trace =
  let k = Array.length l in
  let per = k / p in
  let rows = Array.make p [] in
  for i = 0 to per - 1 do
    let width =
      let w = ref 0 in
      for proc = 0 to p - 1 do
        w := max !w l.((proc * per) + i)
      done;
      !w
    in
    for proc = 0 to p - 1 do
      let li = l.((proc * per) + i) in
      for j = 1 to width do
        rows.(proc) <-
          (if j <= li then Some (i + 1, j) else None) :: rows.(proc)
      done
    done
  done;
  let cells = Array.map (fun r -> Array.of_list (List.rev r)) rows in
  { label = "unflattened SIMD"; cells; time = total_time cells }

(** The paper's concrete instance: K = 8, L = 4,1,2,1,1,3,1,3, P = 2. *)
let paper_l = [| 4; 1; 2; 1; 1; 3; 1; 3 |]

let paper_mimd () = mimd_trace ~l:paper_l ~p:2
let paper_simd () = simd_unflattened_trace ~l:paper_l ~p:2
let paper_flattened () = flattened_trace ~l:paper_l ~p:2

(** Render a trace in the paper's tabular style (Figures 4 and 6). *)
let pp ppf (t : trace) =
  let p = Array.length t.cells in
  Fmt.pf ppf "%s trace (%d steps)@." t.label t.time;
  Fmt.pf ppf "Time |";
  for tm = 1 to t.time do
    Fmt.pf ppf "%3d" tm
  done;
  Fmt.pf ppf "@.";
  for proc = 0 to p - 1 do
    Fmt.pf ppf "i%-4d|" (proc + 1);
    Array.iter
      (function
        | Some (i, _) -> Fmt.pf ppf "%3d" i
        | None -> Fmt.pf ppf "  .")
      t.cells.(proc);
    Fmt.pf ppf "@.j%-4d|" (proc + 1);
    Array.iter
      (function
        | Some (_, j) -> Fmt.pf ppf "%3d" j
        | None -> Fmt.pf ppf "  .")
      t.cells.(proc);
    Fmt.pf ppf "@."
  done

let to_string t = Fmt.str "%a" pp t
