(** Native lockstep simulations of the paper's three NBFORCE loop versions
    (§5.3) — the engines behind Tables 1 and 2. *)

open Lf_simd

type variant =
  | L1  (** "Lu¹": unflattened, selecting the Lrs memory layers in use *)
  | L2  (** "Lu²": unflattened, sweeping all maxLrs layers *)
  | Flat  (** "Lf": flattened (Figure 16), per-lane indirect streams *)

val variant_to_string : variant -> string

type result = {
  variant : variant;
  machine : Machine.t;
  n : int;  (** atoms *)
  nmax : int;  (** compiled-for maximum (sizes maxLrs) *)
  lrs : int;
  max_lrs : int;
  force_steps : int;  (** vector force-routine invocations *)
  table2_count : int;
      (** Table 2's normalization: Lu = maxPCnt × Lrs; Lf = force_steps *)
  useful_pairs : int;  (** Σ pCnt — identical across variants *)
  busy_lanes : int;  (** lane-steps that computed a real pair *)
  time : float;  (** modeled seconds on the machine *)
  forces : Lf_md.Force.vec array;  (** accumulated owner-side forces *)
}

(** Fraction of (force-step × lane) slots that did useful pair work. *)
val utilization : result -> float

(** [lane_atoms m ~n].(q) lists lane [q]'s (0-based) atoms in layer
    order, per the machine layout. *)
val lane_atoms : Machine.t -> n:int -> int array array

(** The unflattened kernels (L1 or L2).  One vector force step per
    (pr, layer); a lane is busy when its atom exists in that layer and has
    ≥ pr partners (Figure 17's WHERE mask). *)
val run_unflattened :
  ?compute_forces:bool ->
  variant ->
  Machine.t ->
  Lf_md.Molecule.t ->
  Lf_md.Pairlist.t ->
  nmax:int ->
  result

(** The flattened kernel (Figure 16): per-lane (layer, pr) cursors advance
    independently, one vector force step per DO WHILE iteration.  Requires
    pCnt ≥ 1 ([Lf_md.Pairlist.ensure_nonempty]).  [indirect] (default
    true) walks atoms cyclically like Figure 16's indirection regardless
    of the physical layout; [false] honors the machine layout (the
    lane-assignment ablation); [partition] overrides the assignment
    entirely (e.g. [Lf_md.Decomp.balanced]). *)
val run_flat :
  ?compute_forces:bool ->
  ?indirect:bool ->
  ?partition:int array array ->
  Machine.t ->
  Lf_md.Molecule.t ->
  Lf_md.Pairlist.t ->
  nmax:int ->
  result

(** Dispatch on the variant. *)
val run :
  ?compute_forces:bool ->
  variant ->
  Machine.t ->
  Lf_md.Molecule.t ->
  Lf_md.Pairlist.t ->
  nmax:int ->
  result

(** The analytical flattened step count (Eq. 1′):
    [max_q Σ_{atoms of q} pCnt] — equals [run_flat]'s count. *)
val flat_steps_bound : ?indirect:bool -> Machine.t -> Lf_md.Pairlist.t -> int

(** Sequential (Sparc 2) baseline: one pair at a time. *)
val run_sequential :
  Machine.t -> Lf_md.Molecule.t -> Lf_md.Pairlist.t -> result
