bin/flattenc.ml: Arg Buffer Cmd Cmdliner Fmt Lf_analysis Lf_core Lf_lang List String Term
