bin/simdsim.ml: Arg Array Buffer Cmd Cmdliner Env Fmt Interp Lf_lang Lf_simd List Nd Parser String Term Values
