bin/simdsim.mli:
