bin/flattenc.mli:
