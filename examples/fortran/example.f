PROGRAM example
  INTEGER k, i, j
  INTEGER l(k)
  REAL x(k)
  DO i = 1, k
    DO j = 1, l(i)
      x(i) = x(i) + i * 10 + j
    ENDDO
  ENDDO
END
