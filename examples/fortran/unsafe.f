PROGRAM unsafe
  INTEGER k, i, j
  INTEGER l(k)
  REAL x(k)
  DO i = 2, k
    DO j = 1, l(i)
      x(i) = x(i - 1) + j
    ENDDO
  ENDDO
END
