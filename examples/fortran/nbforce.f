PROGRAM nbforce
  INTEGER n, maxp, at1, at2, pr
  REAL f(n)
  INTEGER pcnt(n)
  INTEGER partners(n, maxp)
  DO at1 = 1, n
    DO pr = 1, pcnt(at1)
      at2 = partners(at1, pr)
      f(at1) = f(at1) + force(at1, at2)
    ENDDO
  ENDDO
END
