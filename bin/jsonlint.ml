(* jsonlint: validate that files parse as JSON — or, with --jsonl, as one
   JSON value per non-empty line.  The trace-smoke alias uses this to
   check every file the observability layer emits (metrics dumps, JSONL
   traces, occupancy timelines, Chrome trace events) without external
   JSON tooling.

   Usage: jsonlint [--jsonl] FILE...                                    *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let () =
  let jsonl = ref false in
  let files = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--jsonl" -> jsonl := true
        | f -> files := f :: !files)
    Sys.argv;
  if !files = [] then begin
    prerr_endline "usage: jsonlint [--jsonl] FILE...";
    exit 2
  end;
  let failures = ref 0 in
  let check what text =
    match Lf_obs.Json.parse text with
    | Ok _ -> ()
    | Error msg ->
        incr failures;
        Printf.eprintf "jsonlint: %s: %s\n" what msg
  in
  List.iter
    (fun path ->
      let text = read_file path in
      let values =
        if !jsonl then
          String.split_on_char '\n' text
          |> List.mapi (fun i line -> (Printf.sprintf "%s:%d" path (i + 1), line))
          |> List.filter (fun (_, line) -> String.trim line <> "")
        else [ (path, text) ]
      in
      if values = [] then begin
        incr failures;
        Printf.eprintf "jsonlint: %s: no JSON values found\n" path
      end;
      List.iter (fun (what, text) -> check what text) values;
      if !failures = 0 then
        Printf.printf "jsonlint: %s: %d JSON value%s OK\n" path
          (List.length values)
          (if List.length values = 1 then "" else "s"))
    (List.rev !files);
  exit (if !failures = 0 then 0 else 1)
