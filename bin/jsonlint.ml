(* jsonlint: validate that files parse as JSON — or, with --jsonl, as one
   JSON value per non-empty line.  The trace-smoke alias uses this to
   check every file the observability layer emits (metrics dumps, JSONL
   traces, occupancy timelines, Chrome trace events) without external
   JSON tooling.

   --cmp-ignoring KEY[,KEY...] A B compares two JSON files structurally
   after deleting the named keys from every object at any depth — how
   the smoke aliases assert that metrics/stats dumps from different
   engine configurations agree on everything except their provenance
   ("run") and scheduler-dependent ("volatile") parts.  Exit 1 when the
   stripped values differ.

   --assert-positive PATH FILE walks the /-separated object path in
   FILE and requires the value there to be a number > 0 — how the
   cache-smoke alias asserts that a --stats-json dump recorded warm
   cache traffic (e.g. --assert-positive opt/cache.hits stats.json).

   Usage: jsonlint [--jsonl] FILE...
          jsonlint --cmp-ignoring KEYS FILE1 FILE2
          jsonlint --assert-positive PATH FILE                          *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let rec strip_keys keys (j : Lf_obs.Json.t) : Lf_obs.Json.t =
  match j with
  | Lf_obs.Json.Obj fields ->
      Lf_obs.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if List.mem k keys then None else Some (k, strip_keys keys v))
           fields)
  | Lf_obs.Json.List items ->
      Lf_obs.Json.List (List.map (strip_keys keys) items)
  | other -> other

let cmp_ignoring keys a b =
  let parse path =
    match Lf_obs.Json.parse (read_file path) with
    | Ok j -> j
    | Error msg ->
        Printf.eprintf "jsonlint: %s: %s\n" path msg;
        exit 1
  in
  let keys = String.split_on_char ',' keys in
  let ja = strip_keys keys (parse a) in
  let jb = strip_keys keys (parse b) in
  (* canonicalize field order so dumps that agree on content but not on
     emission order still compare equal *)
  let rec canon (j : Lf_obs.Json.t) : Lf_obs.Json.t =
    match j with
    | Lf_obs.Json.Obj fields ->
        Lf_obs.Json.Obj
          (List.map (fun (k, v) -> (k, canon v)) fields
          |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2))
    | Lf_obs.Json.List items -> Lf_obs.Json.List (List.map canon items)
    | other -> other
  in
  if Lf_obs.Json.to_string (canon ja) = Lf_obs.Json.to_string (canon jb)
  then begin
    Printf.printf "jsonlint: %s == %s (ignoring %s)\n" a b
      (String.concat "," keys);
    exit 0
  end
  else begin
    Printf.eprintf "jsonlint: %s and %s differ outside ignored keys %s\n" a b
      (String.concat "," keys);
    exit 1
  end

let assert_positive path_expr file =
  let j =
    match Lf_obs.Json.parse (read_file file) with
    | Ok j -> j
    | Error msg ->
        Printf.eprintf "jsonlint: %s: %s\n" file msg;
        exit 1
  in
  let keys = String.split_on_char '/' path_expr in
  let v =
    List.fold_left
      (fun j k ->
        match Lf_obs.Json.member k j with
        | Some v -> v
        | None ->
            Printf.eprintf "jsonlint: %s: no value at %s (missing %S)\n" file
              path_expr k;
            exit 1)
      j keys
  in
  let ok =
    match v with
    | Lf_obs.Json.Int n -> n > 0
    | Lf_obs.Json.Float f -> f > 0.0
    | _ -> false
  in
  if ok then begin
    Printf.printf "jsonlint: %s: %s = %s > 0\n" file path_expr
      (Lf_obs.Json.to_string v);
    exit 0
  end
  else begin
    Printf.eprintf "jsonlint: %s: %s = %s is not a positive number\n" file
      path_expr
      (Lf_obs.Json.to_string v);
    exit 1
  end

let () =
  (match Sys.argv with
  | [| _; "--cmp-ignoring"; keys; a; b |] -> cmp_ignoring keys a b
  | [| _; "--assert-positive"; path; file |] -> assert_positive path file
  | _ -> ());
  let jsonl = ref false in
  let files = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--jsonl" -> jsonl := true
        | "--cmp-ignoring" ->
            prerr_endline "usage: jsonlint --cmp-ignoring KEYS FILE1 FILE2";
            exit 2
        | "--assert-positive" ->
            prerr_endline "usage: jsonlint --assert-positive PATH FILE";
            exit 2
        | f -> files := f :: !files)
    Sys.argv;
  if !files = [] then begin
    prerr_endline "usage: jsonlint [--jsonl] FILE...";
    exit 2
  end;
  let failures = ref 0 in
  let check what text =
    match Lf_obs.Json.parse text with
    | Ok _ -> ()
    | Error msg ->
        incr failures;
        Printf.eprintf "jsonlint: %s: %s\n" what msg
  in
  List.iter
    (fun path ->
      let text = read_file path in
      let values =
        if !jsonl then
          String.split_on_char '\n' text
          |> List.mapi (fun i line -> (Printf.sprintf "%s:%d" path (i + 1), line))
          |> List.filter (fun (_, line) -> String.trim line <> "")
        else [ (path, text) ]
      in
      if values = [] then begin
        incr failures;
        Printf.eprintf "jsonlint: %s: no JSON values found\n" path
      end;
      List.iter (fun (what, text) -> check what text) values;
      if !failures = 0 then
        Printf.printf "jsonlint: %s: %d JSON value%s OK\n" path
          (List.length values)
          (if List.length values = 1 then "" else "s"))
    (List.rev !files);
  exit (if !failures = 0 then 0 else 1)
