(* simdfuzz: coverage-guided differential fuzzing of the whole engine.

   Generates and mutates mini-Fortran programs (both the SIMD dialect
   and front-end loop nests), judges each one with the differential
   oracle battery in lib/fuzz — cross-engine/-O/jobs equivalence under
   the IR verifier, stats-registry invariance, pretty-print/parse
   round-trip, flatten/coalesce translation validation — and keeps the
   inputs that light up new coverage (stats counters, lint rules, error
   classes).  Failures are shrunk by delta debugging to a minimal
   reproducer suitable for test/corpus/.

   A campaign is deterministic in --seed: same seed, same budget, same
   corpus, bit-identical report.

   Exit status: 0 when no oracle failed, 1 when any failure was found
   (campaign or replay), 2 on input/usage errors.

   Examples:
     dune exec bin/simdfuzz.exe -- --fuzz 200 --seed 7 --corpus test/corpus
     dune exec bin/simdfuzz.exe -- --replay test/corpus/*.f
     dune exec bin/simdfuzz.exe -- --fuzz 60 --chaos fullmask --minimize *)

open Cmdliner
module Fuzz = Lf_fuzz.Fuzz
module Input = Lf_fuzz.Input
module Oracle = Lf_fuzz.Oracle

let err fmt = Fmt.kstr (fun m -> Fmt.epr "simdfuzz: %s@." m) fmt

let load_corpus dir =
  match Sys.readdir dir with
  | exception Sys_error m ->
      err "cannot read corpus directory: %s" m;
      Error ()
  | names ->
      let names =
        List.sort String.compare
          (List.filter
             (fun n -> Filename.check_suffix n ".f")
             (Array.to_list names))
      in
      List.fold_left
        (fun acc n ->
          match acc with
          | Error () -> Error ()
          | Ok inputs -> (
              match Input.of_file (Filename.concat dir n) with
              | Ok i -> Ok (inputs @ [ i ])
              | Error m ->
                  err "%s" m;
                  Error ()))
        (Ok []) names

let print_failure i (f : Fuzz.failure) =
  Fmt.pr "FAIL #%d [%s] %s@." i f.Fuzz.f_oracle f.Fuzz.f_detail;
  Fmt.pr "  input: %d statements@." (Input.stmt_count f.Fuzz.f_input);
  (match f.Fuzz.f_minimized with
  | Some m ->
      Fmt.pr "  minimized to %d statements:@." (Input.stmt_count m);
      Fmt.pr "%s@." (Input.to_string m)
  | None -> Fmt.pr "%s@." (Input.to_string f.Fuzz.f_input))

let write_repros dir (failures : Fuzz.failure list) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i f ->
      let repro = Option.value f.Fuzz.f_minimized ~default:f.Fuzz.f_input in
      let path =
        Filename.concat dir (Fmt.str "repro_%s_%d.f" f.Fuzz.f_oracle i)
      in
      Input.to_file path repro;
      Fmt.pr "  repro written to %s@." path)
    failures

let write_csv path (log : (int * int) list) =
  let oc = open_out path in
  output_string oc "input,coverage\n";
  List.iter (fun (i, c) -> Printf.fprintf oc "%d,%d\n" i c) log;
  close_out oc

let replay_files ~fuel files =
  let failed = ref false and broken = ref false in
  List.iter
    (fun path ->
      match Input.of_file path with
      | Error m ->
          err "%s" m;
          broken := true
      | Ok i -> (
          match (Oracle.run ~fuel i).Oracle.verdict with
          | Oracle.Pass -> Fmt.pr "%s: pass@." path
          | Oracle.Fuel -> Fmt.pr "%s: pass (fuel exhaustion, engine-identical)@." path
          | Oracle.Fail { oracle; detail } ->
              Fmt.pr "%s: FAIL [%s] %s@." path oracle detail;
              failed := true))
    files;
  if !broken then 2 else if !failed then 1 else 0

let dialects_of = function
  | `Both -> [ Input.Simd; Input.Nest ]
  | `Simd -> [ Input.Simd ]
  | `Nest -> [ Input.Nest ]

let run count seed fuel dialect no_mutate minimize corpus chaos replay files
    csv repro_dir =
  let uninstall =
    match chaos with
    | None -> Ok (fun () -> ())
    | Some target -> (
        match Fuzz.install_chaos target with
        | f -> Ok f
        | exception Invalid_argument m ->
            err "%s" m;
            Error ())
  in
  match uninstall with
  | Error () -> 2
  | Ok uninstall ->
      Fun.protect ~finally:uninstall @@ fun () ->
      if replay then
        if files = [] then begin
          err "--replay needs corpus FILE arguments";
          2
        end
        else replay_files ~fuel files
      else if count <= 0 then begin
        err "nothing to do: give --fuzz N or --replay FILE...";
        2
      end
      else begin
        match
          match corpus with None -> Ok [] | Some dir -> load_corpus dir
        with
        | Error () -> 2
        | Ok seeds ->
            Fmt.pr "simdfuzz: seed %d, %d inputs%s, %s%s%s@." seed count
              (match seeds with
              | [] -> ""
              | s -> Fmt.str " + %d corpus seeds" (List.length s))
              (match dialect with
              | `Both -> "dialects simd+nest"
              | `Simd -> "dialect simd"
              | `Nest -> "dialect nest")
              (if no_mutate then ", pure random" else ", coverage-guided")
              (match chaos with
              | Some t -> Fmt.str ", chaos=%s" t
              | None -> "");
            let cfg =
              {
                Fuzz.default_config with
                Fuzz.seed;
                count;
                fuel;
                dialects = dialects_of dialect;
                mutate = not no_mutate;
                minimize;
              }
            in
            let rep = Fuzz.run ~seeds cfg in
            List.iteri (fun i f -> print_failure (i + 1) f) rep.Fuzz.r_failures;
            Option.iter (fun p -> write_csv p rep.Fuzz.r_coverage_log) csv;
            (match repro_dir with
            | Some dir when rep.Fuzz.r_failures <> [] ->
                write_repros dir rep.Fuzz.r_failures
            | _ -> ());
            Fmt.pr
              "simdfuzz: %d oracle runs, %d failures, %d fuel-outs, %d \
               inputs kept, %d coverage keys@."
              rep.Fuzz.r_executed
              (List.length rep.Fuzz.r_failures)
              rep.Fuzz.r_fuel_outs
              (List.length rep.Fuzz.r_corpus)
              rep.Fuzz.r_coverage;
            if rep.Fuzz.r_failures <> [] then 1 else 0
      end

let cmd =
  let count =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"N"
          ~doc:"Run a campaign of $(docv) generated/mutated inputs.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Campaign seed; the whole run (generation, mutation, corpus \
             picks, reduction) is deterministic in it.")
  in
  let fuel =
    Arg.(
      value
      & opt int Oracle.default_fuel
      & info [ "fuel" ] ~docv:"STEPS"
          ~doc:
            "Execution-step budget per engine leg; engine-identical \
             exhaustion is the distinct 'fuel' verdict, so infinite GOTO \
             loops fail fast instead of hanging the campaign.")
  in
  let dialect =
    let dialect_conv =
      Arg.enum [ ("both", `Both); ("simd", `Simd); ("nest", `Nest) ]
    in
    Arg.(
      value & opt dialect_conv `Both
      & info [ "dialect" ] ~docv:"D"
          ~doc:
            "Input dialect(s) to generate: $(b,simd) (cross-engine \
             differential legs), $(b,nest) (flatten/coalesce translation \
             validation) or $(b,both).")
  in
  let no_mutate =
    Arg.(
      value & flag
      & info [ "no-mutate" ]
          ~doc:
            "Disable coverage-guided mutation: every input is freshly \
             generated (the pure-random baseline of the EXPERIMENTS \
             study).")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:
            "Shrink every failure to a 1-minimal reproducer by \
             statement/expression-level delta debugging before reporting \
             it.")
  in
  let corpus =
    Arg.(
      value
      & opt (some dir) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Seed the campaign with every *.f input in $(docv) (replayed \
             before generation; their coverage primes the corpus).")
  in
  let chaos =
    Arg.(
      value
      & opt (some string) None
      & info [ "chaos" ] ~docv:"TARGET"
          ~doc:
            "Fault injection for self-tests: an optimizer phase name \
             (e.g. $(b,fullmask)) mis-annotates the IR after that phase; \
             $(b,oracle) installs a deliberately broken oracle.  The \
             campaign is then expected to find and minimize the planted \
             bug.")
  in
  let replay =
    Arg.(
      value & flag
      & info [ "replay" ]
          ~doc:
            "Replay the FILE arguments through the oracle battery and \
             exit (the regression-corpus mode used by dune runtest).")
  in
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"FILE" ~doc:"Corpus inputs for --replay.")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "coverage-csv" ] ~docv:"PATH"
          ~doc:
            "Write the per-input cumulative coverage curve as CSV (the \
             EXPERIMENTS coverage-growth data).")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "write-repros" ] ~docv:"DIR"
          ~doc:
            "Persist each failure's (minimized) reproducer as a \
             self-contained corpus file in $(docv).")
  in
  Cmd.v
    (Cmd.info "simdfuzz" ~version:"1.0"
       ~doc:
         "coverage-guided differential fuzzing with automatic repro \
          minimization")
    Term.(
      const run $ count $ seed $ fuel $ dialect $ no_mutate $ minimize
      $ corpus $ chaos $ replay $ files $ csv $ repro_dir)

let () = exit (Cmd.eval' cmd)
