(* simdbatch: execute a JSON work list of (program × p × engine × -O ×
   jobs) items on the simulated SIMD machine through one shared
   compiled-program cache, streaming one manifest-style JSONL record per
   item.

   Items sharing (source bytes, -O, verify, p) pay the front end once
   and run warm afterwards; "repeat": N re-runs an item N times, so a
   repeat grid demonstrates the warm path inside a single item too.  A
   failing item reports ("status": "error") and the batch continues;
   the exit status is 1 iff any item failed, 124 for a malformed work
   list or CLI usage.

   Examples:
     dune exec bin/simdbatch.exe -- jobs.json
     dune exec bin/simdbatch.exe -- --jsonl out.jsonl --artifacts art/ \
       --stats-json stats.json jobs.json *)

open Cmdliner
module Batch = Lf_simd.Batch
module Src = Lf_kernels.Nbforce_src

let nbforce_setup atoms =
  (* One workload per atom count, shared by every nbforce item: the
     pairlist build dominates setup and is identical across items. *)
  let memo : (int, Lf_md.Molecule.t * Lf_md.Pairlist.t) Hashtbl.t =
    Hashtbl.create 4
  in
  fun (it : Batch.item) vm ->
    match it.Batch.bi_kernel with
    | None -> ()
    | Some "nbforce" ->
        let mol, pl =
          match Hashtbl.find_opt memo atoms with
          | Some w -> w
          | None ->
              let mol = Lf_md.Workload.sod ~n:atoms ~seed:13 () in
              let pl = Lf_md.Workload.pairlist mol ~cutoff:7.0 in
              Hashtbl.add memo atoms (mol, pl);
              (mol, pl)
        in
        let n, maxp = Src.params pl in
        Lf_simd.Vm.register_func vm ~pure:true "force" (Src.force_fn mol);
        Lf_simd.Vm.register_proc vm "onef" (Src.onef_simd mol);
        Lf_simd.Vm.bind_scalar vm "n" (Lf_lang.Values.VInt n);
        Lf_simd.Vm.bind_scalar vm "maxp" (Lf_lang.Values.VInt maxp);
        Src.bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
            Lf_simd.Vm.bind_global vm name a)
    | Some k -> raise (Batch.Bad_jobs (Printf.sprintf "unknown kernel %S" k))

let write_json path json =
  let oc = open_out path in
  output_string oc (Lf_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

let run jobs_path jsonl artifacts atoms stats stats_json =
  try
    if stats || Option.is_some stats_json then Lf_obs.Stats.enable ();
    let items = Batch.load jobs_path in
    let oc, close =
      match jsonl with
      | None | Some "-" -> (stdout, fun () -> flush stdout)
      | Some f ->
          let oc = open_out f in
          (oc, fun () -> close_out oc)
    in
    let emit j =
      output_string oc (Lf_obs.Json.to_string j);
      output_char oc '\n'
    in
    let any_failed =
      Fun.protect ~finally:close (fun () ->
          Batch.run ~setup:(nbforce_setup atoms) ~emit ?artifacts items)
    in
    if stats then Fmt.pr "%a" Lf_obs.Stats.pp ();
    Option.iter (fun f -> write_json f (Lf_obs.Stats.to_json ())) stats_json;
    if any_failed then 1 else 0
  with
  | Batch.Bad_jobs msg ->
      Fmt.epr "simdbatch: %s@." msg;
      124
  | Sys_error msg ->
      Fmt.epr "simdbatch: %s@." msg;
      124

let cmd =
  let jobs_path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"JOBS.json"
          ~doc:
            "Work list: a JSON array (or {\"jobs\": [...]}) of items; see \
             the library documentation for the item schema.")
  in
  let jsonl =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Stream one JSON record per item to $(docv) ('-' or omitted: \
             stdout).")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:
            "Write per-item deterministic artifacts \
             ($(i,item-NNN.metrics.json), $(i,item-NNN.state.txt)) into \
             $(docv), creating it if needed.")
  in
  let atoms =
    Arg.(
      value & opt int 96
      & info [ "atoms" ] ~docv:"N"
          ~doc:"Number of atoms for items with \"kernel\": \"nbforce\".")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Enable the engine telemetry registry for the whole batch and \
             print it afterwards (includes the cache.hits / cache.misses \
             / cache.evictions counters).")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Enable the telemetry registry and write its dump as JSON to \
             $(docv) after the batch.")
  in
  Cmd.v
    (Cmd.info "simdbatch" ~version:"1.0"
       ~doc:"run a JSON work list on the simulated SIMD machine")
    Term.(
      const run $ jobs_path $ jsonl $ artifacts $ atoms $ stats $ stats_json)

let () = exit (Cmd.eval' cmd)
