(* simdsim: run a pseudo-Fortran program on the simulated machines.

   Scalars are seeded with --set name=value; arrays are allocated from the
   program's declarations (whose dimensions may reference seeded scalars)
   and zero-initialized, or filled with --fill name=v0,v1,... .  After the
   run, --dump name prints a variable, and the execution metrics are
   reported.

   Examples:
     dune exec bin/simdsim.exe -- --lanes 4 --set k=8 \
       --fill l=4,1,2,1,1,3,1,3 --dump x example_simd.f
     dune exec bin/simdsim.exe -- --seq --set k=8 example.f *)

open Cmdliner
open Lf_lang

let read_source path =
  let ic = if path = "-" then stdin else open_in path in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  if path <> "-" then close_in ic;
  Buffer.contents buf

let parse_binding s =
  match String.index_opt s '=' with
  | None -> failwith (s ^ ": expected name=value")
  | Some i ->
      ( String.lowercase_ascii (String.sub s 0 i),
        String.sub s (i + 1) (String.length s - i - 1) )

let scalar_value v =
  match int_of_string_opt v with
  | Some n -> Values.VInt n
  | None -> (
      match float_of_string_opt v with
      | Some f -> Values.VReal f
      | None -> Values.VBool (String.lowercase_ascii v = "true"))

let fill_array v =
  let items = String.split_on_char ',' v in
  let ints = List.filter_map int_of_string_opt items in
  if List.length ints = List.length items then
    Values.AInt (Nd.of_array (Array.of_list ints))
  else
    Values.AReal
      (Nd.of_array (Array.of_list (List.map float_of_string items)))

let run path seq engine lanes sets fills dumps =
  let prog = Parser.program_of_string (read_source path) in
  let sets = List.map parse_binding sets in
  let fills = List.map parse_binding fills in
  if seq then begin
    let ctx =
      Interp.run
        ~params:(List.map (fun (k, v) -> (k, scalar_value v)) sets)
        ~setup:(fun ctx ->
          List.iter
            (fun (k, v) -> Env.set ctx.Interp.env k (Values.VArr (fill_array v)))
            fills)
        prog
    in
    Fmt.pr "sequential run: %d interpreter steps@." ctx.Interp.steps;
    List.iter
      (fun name ->
        Fmt.pr "%s = %a@." name Values.pp (Env.find ctx.Interp.env name))
      dumps;
    0
  end
  else begin
    let vm =
      Lf_simd.Vm.run ~engine ~p:lanes
        ~setup:(fun vm ->
          Lf_simd.Vm.bind_scalar vm "p" (Values.VInt lanes);
          List.iter
            (fun (k, v) -> Lf_simd.Vm.bind_scalar vm k (scalar_value v))
            sets;
          List.iter
            (fun (k, v) -> Lf_simd.Vm.bind_global vm k (fill_array v))
            fills)
        prog
    in
    Fmt.pr "SIMD run on %d lanes: %a@." lanes Lf_simd.Metrics.pp
      vm.Lf_simd.Vm.metrics;
    List.iter
      (fun name ->
        match Lf_simd.Vm.find vm name with
        | Lf_simd.Vm.VScalar r -> Fmt.pr "%s = %a@." name Values.pp !r
        | Lf_simd.Vm.VPlural vs ->
            Fmt.pr "%s = %a@." name Lf_simd.Pval.pp (Lf_simd.Pval.Plural vs)
        | Lf_simd.Vm.VGlobal a | Lf_simd.Vm.VPluralArr a ->
            Fmt.pr "%s = %a@." name Values.pp (Values.VArr a))
      dumps;
    0
  end

let cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Program to run ('-' for stdin).")
  in
  let seq =
    Arg.(
      value & flag
      & info [ "seq" ] ~doc:"Run on the sequential interpreter instead.")
  in
  let engine =
    let engine_conv =
      Arg.enum [ ("tree-walk", `Tree_walk); ("compiled", `Compiled) ]
    in
    Arg.(
      value
      & opt engine_conv `Tree_walk
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "SIMD execution engine: $(b,tree-walk) (the reference \
             interpreter) or $(b,compiled) (slot-resolved closures; same \
             results, faster).")
  in
  let lanes =
    Arg.(value & opt int 4 & info [ "lanes" ] ~doc:"SIMD lane count (P).")
  in
  let sets =
    Arg.(
      value
      & opt_all string []
      & info [ "set" ] ~docv:"NAME=VALUE" ~doc:"Seed a scalar variable.")
  in
  let fills =
    Arg.(
      value
      & opt_all string []
      & info [ "fill" ] ~docv:"NAME=V0,V1,..."
          ~doc:"Seed a one-dimensional array.")
  in
  let dumps =
    Arg.(
      value
      & opt_all string []
      & info [ "dump" ] ~docv:"NAME" ~doc:"Print a variable after the run.")
  in
  Cmd.v
    (Cmd.info "simdsim" ~version:"1.0"
       ~doc:"run pseudo-Fortran programs on the simulated SIMD machine")
    Term.(const run $ path $ seq $ engine $ lanes $ sets $ fills $ dumps)

let () = exit (Cmd.eval' cmd)
