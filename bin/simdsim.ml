(* simdsim: run a pseudo-Fortran program on the simulated machines.

   Scalars are seeded with --set name=value; arrays are allocated from the
   program's declarations (whose dimensions may reference seeded scalars)
   and zero-initialized, or filled with --fill name=v0,v1,... .  After the
   run, --dump name prints a variable, and the execution metrics are
   reported.

   Observability: --trace streams one JSON line per vector step, --profile
   prints the per-line divergence profile and lane-occupancy heatmap (and
   checks that its totals reproduce the aggregate metrics exactly),
   --metrics-json / --occupancy-json / --chrome write machine-readable
   dumps (the Chrome file opens in Perfetto, one track per lane).

   --kernel nbforce binds the MD workload the test-suite uses (pairlist,
   force function, n/maxp parameters), so the original or flattened
   NBFORCE source runs as-is; --compare-mimd additionally runs the
   original Figure 13 kernel on the asynchronous MIMD model with a block
   decomposition and reports TIME_SIMD vs TIME_MIMD per source region.

   Examples:
     dune exec bin/simdsim.exe -- --lanes 4 --set k=8 \
       --fill l=4,1,2,1,1,3,1,3 --dump x example_simd.f
     dune exec bin/simdsim.exe -- --seq --set k=8 example.f
     dune exec bin/simdsim.exe -- --lanes 8 --kernel nbforce --profile \
       --compare-mimd nbforce_flat_simd.f *)

open Cmdliner
open Lf_lang
module Obs = Lf_report.Obs_report
module Src = Lf_kernels.Nbforce_src

let read_source path =
  let ic = if path = "-" then stdin else open_in path in
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    let k = input ic chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      loop ()
    end
  in
  loop ();
  if path <> "-" then close_in ic;
  Buffer.contents buf

let parse_binding s =
  match String.index_opt s '=' with
  | None ->
      raise (Lf_simd.Batch.Bad_value (s ^ ": expected name=value"))
  | Some i ->
      ( String.lowercase_ascii (String.sub s 0 i),
        String.sub s (i + 1) (String.length s - i - 1) )

(* Seed-value parsing is shared with the batch driver; a malformed
   token raises [Batch.Bad_value] naming it, which the driver below
   maps to the usage-error exit 124 (it used to escape as an uncaught
   Failure backtrace from float_of_string). *)
let scalar_value = Lf_simd.Batch.scalar_value
let fill_array = Lf_simd.Batch.fill_array

let write_json path json =
  let oc = open_out path in
  output_string oc (Lf_obs.Json.to_string json);
  output_char oc '\n';
  close_out oc

(* ------------------------------------------------------------------ *)
(* NBFORCE kernel mode                                                 *)
(* ------------------------------------------------------------------ *)

(* The same MD system the end-to-end tests run: a sod cluster and its
   cell-list pairlist. *)
let nbforce_workload atoms =
  let mol = Lf_md.Workload.sod ~n:atoms ~seed:13 () in
  let pl = Lf_md.Workload.pairlist mol ~cutoff:7.0 in
  (mol, pl)

(* Bind the workload into a SIMD VM: force function (and the CALL-variant
   onef), the n/maxp parameters, and the pcnt/partners/f arrays. *)
let setup_nbforce_simd (mol, pl) vm =
  let n, maxp = Src.params pl in
  Lf_simd.Vm.register_func vm ~pure:true "force" (Src.force_fn mol);
  Lf_simd.Vm.register_proc vm "onef" (Src.onef_simd mol);
  Lf_simd.Vm.bind_scalar vm "n" (Values.VInt n);
  Lf_simd.Vm.bind_scalar vm "maxp" (Values.VInt maxp);
  Src.bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
      Lf_simd.Vm.bind_global vm name a)

let setup_nbforce_seq (mol, pl) ctx =
  let n, maxp = Src.params pl in
  Interp.register_func ctx "force" (Src.force_fn mol);
  Interp.register_proc ctx "onef" (Src.onef_seq mol);
  Env.set ctx.Interp.env "n" (Values.VInt n);
  Env.set ctx.Interp.env "maxp" (Values.VInt maxp);
  Src.bind_arrays pl ~n ~maxp ~set_global:(fun name a ->
      Env.set ctx.Interp.env name (Values.VArr a))

let max_abs_err reference f =
  let err = ref 0.0 in
  Array.iteri (fun i r -> err := Float.max !err (Float.abs (f.(i) -. r))) reference;
  !err

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run path seq engine jobs lanes olevel dump_ir dump_ir_phase verify_ir
    sets fills dumps kernel atoms trace_file profile metrics_json
    occupancy_json chrome_file compare_mimd lint stats stats_json manifest
    warm =
  try
    if warm > 0 && seq then begin
      Fmt.epr "simdsim: --warm requires a SIMD engine (drop --seq)@.";
      raise Exit
    end;
    if stats || Option.is_some stats_json || Option.is_some manifest then
      Lf_obs.Stats.enable ();
    if Option.is_some jobs && engine <> `Parallel then begin
      Fmt.epr "simdsim: --jobs requires --engine parallel@.";
      raise Exit
    end;
    if Option.is_some dump_ir && seq then begin
      Fmt.epr "simdsim: --dump-ir requires a SIMD engine (drop --seq)@.";
      raise Exit
    end;
    if Option.is_some dump_ir_phase && seq then begin
      Fmt.epr
        "simdsim: --dump-ir-phase requires a SIMD engine (drop --seq)@.";
      raise Exit
    end;
    if verify_ir && seq then begin
      Fmt.epr "simdsim: --verify-ir requires a SIMD engine (drop --seq)@.";
      raise Exit
    end;
    let src = read_source path in
    let prog = Parser.program_of_string src in
    if lint then begin
      let report = Lf_analysis.Lint.check_program prog in
      List.iter
        (fun d ->
          Fmt.epr "%a"
            (Lf_analysis.Lint.pp_diag_with_context ~file:path ~source:src ())
            d)
        report.Lf_analysis.Lint.diags;
      if not report.Lf_analysis.Lint.safe then begin
        Fmt.epr "simdsim: refusing to run %s: lint errors@." path;
        raise Exit
      end
    end;
    let sets = List.map parse_binding sets in
    let fills = List.map parse_binding fills in
    let workload =
      match kernel with
      | Some `Nbforce -> Some (nbforce_workload atoms)
      | None -> None
    in
    if compare_mimd && Option.is_none workload then begin
      Fmt.epr "simdsim: --compare-mimd requires --kernel nbforce@.";
      raise Exit
    end;
    if seq then begin
      let line_table : (int, int) Hashtbl.t = Hashtbl.create 16 in
      let t0 = Lf_obs.Stats.now_ns () in
      let c0 = Sys.time () in
      let ctx =
        Interp.run
          ~params:(List.map (fun (k, v) -> (k, scalar_value v)) sets)
          ~setup:(fun ctx ->
            if profile then
              ctx.Interp.step_hook <-
                Some
                  (fun loc ->
                    let l = loc.Errors.line in
                    Hashtbl.replace line_table l
                      (1
                      + Option.value ~default:0
                          (Hashtbl.find_opt line_table l)));
            Option.iter (fun w -> setup_nbforce_seq w ctx) workload;
            List.iter
              (fun (k, v) ->
                Env.set ctx.Interp.env k (Values.VArr (fill_array v)))
              fills)
          prog
      in
      let wall_ns = Int64.sub (Lf_obs.Stats.now_ns ()) t0 in
      let cpu_s = Sys.time () -. c0 in
      Fmt.pr "sequential run: %d interpreter steps@." ctx.Interp.steps;
      if stats then Fmt.pr "@.%a" Lf_obs.Stats.pp ();
      Option.iter (fun f -> write_json f (Lf_obs.Stats.to_json ())) stats_json;
      Option.iter
        (fun f ->
          Lf_obs.Manifest.write f
            (Lf_obs.Manifest.make ~program:path ~source:src ~engine:"seq"
               ~opt:0 ~jobs:1 ~p:1 ~wall_ns ~cpu_s
               ~metrics:
                 (Lf_obs.Json.Obj
                    [ ("steps", Lf_obs.Json.Int ctx.Interp.steps) ])
               ~stats:(Lf_obs.Stats.to_json ())))
        manifest;
      if profile then begin
        let rows =
          Hashtbl.fold (fun l c acc -> (l, [| c |]) :: acc) line_table []
          |> List.sort compare
        in
        Obs.mimd_line_table ~source:src Fmt.stdout rows
      end;
      List.iter
        (fun name ->
          Fmt.pr "%s = %a@." name Values.pp (Env.find ctx.Interp.env name))
        dumps;
      0
    end
    else begin
      let need_profile = profile || compare_mimd in
      let prof = if need_profile then Some (Lf_obs.Profile.create ()) else None in
      let occ =
        if profile || Option.is_some occupancy_json then
          Some (Lf_obs.Occupancy.create ~p:lanes ())
        else None
      in
      let chrome =
        Option.map (fun _ -> Lf_obs.Chrome.create ~p:lanes) chrome_file
      in
      let trace_oc =
        Option.map
          (fun f -> if f = "-" then stdout else open_out f)
          trace_file
      in
      let bind_inputs vm =
        Lf_simd.Vm.bind_scalar vm "p" (Values.VInt lanes);
        Option.iter (fun w -> setup_nbforce_simd w vm) workload;
        List.iter
          (fun (k, v) -> Lf_simd.Vm.bind_scalar vm k (scalar_value v))
          sets;
        List.iter
          (fun (k, v) -> Lf_simd.Vm.bind_global vm k (fill_array v))
          fills
      in
      Option.iter
        (fun f ->
          let json =
            Lf_simd.Vm.dump_ir ~opt:olevel ~p:lanes ~setup:bind_inputs prog
          in
          if f = "-" then
            Fmt.pr "%s@." (Lf_obs.Json.to_string json)
          else write_json f json)
        dump_ir;
      Option.iter
        (fun dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let phases =
            Lf_simd.Vm.dump_ir_phases ~opt:olevel ~p:lanes
              ~setup:bind_inputs prog
          in
          List.iteri
            (fun i (name, json) ->
              write_json
                (Filename.concat dir (Fmt.str "%02d-%s.json" i name))
                json)
            phases)
        dump_ir_phase;
      if verify_ir then begin
        try Lf_simd.Vm.verify_ir ~opt:olevel ~p:lanes ~setup:bind_inputs prog
        with Lf_simd.Verify.Error diags ->
          List.iter
            (fun d ->
              Fmt.epr "%a"
                (Lf_analysis.Lint.pp_diag_with_context ~file:path
                   ~source:src ())
                d)
            diags;
          Fmt.epr "simdsim: IR verification failed for %s@." path;
          raise Exit
      end;
      let attach_sinks vm =
        Option.iter
          (fun p -> Lf_simd.Vm.add_trace_sink vm (Lf_obs.Profile.sink p))
          prof;
        Option.iter
          (fun o -> Lf_simd.Vm.add_trace_sink vm (Lf_obs.Occupancy.sink o))
          occ;
        Option.iter
          (fun c -> Lf_simd.Vm.add_trace_sink vm (Lf_obs.Chrome.sink c))
          chrome;
        Option.iter
          (fun oc -> Lf_simd.Vm.add_trace_sink vm (Lf_obs.Trace.jsonl_sink oc))
          trace_oc
      in
      let t0 = Lf_obs.Stats.now_ns () in
      let c0 = Sys.time () in
      let vm =
        if warm = 0 then
          Lf_simd.Vm.run ~engine ?jobs ~opt:olevel ~verify:verify_ir
            ~p:lanes
            ~setup:(fun vm ->
              bind_inputs vm;
              attach_sinks vm)
            prog
        else begin
          (* --warm N: one cold run followed by N warm runs through a
             process-local program cache; every artifact (metrics,
             dumps, traces, profile) comes from the LAST — warm — run,
             so byte-comparing against a cold run's artifacts checks
             the cache's bit-identity contract end to end. *)
          let cache = Lf_simd.Progcache.create () in
          let last = ref None in
          for i = 0 to warm do
            last :=
              Some
                (Lf_simd.Vm.run_src ~engine ?jobs ~opt:olevel
                   ~verify:verify_ir ~cache ~p:lanes
                   ~setup:(fun vm ->
                     bind_inputs vm;
                     if i = warm then attach_sinks vm)
                   src)
          done;
          Option.get !last
        end
      in
      let wall_ns = Int64.sub (Lf_obs.Stats.now_ns ()) t0 in
      let cpu_s = Sys.time () -. c0 in
      Option.iter
        (fun oc -> if oc != stdout then close_out oc else flush oc)
        trace_oc;
      let engine_name =
        match engine with
        | `Tree_walk -> "tree-walk"
        | `Compiled -> "compiled"
        | `Parallel -> "parallel"
      in
      let opt_used = match engine with `Tree_walk -> 0 | _ -> olevel in
      let jobs_used =
        match engine with
        | `Parallel ->
            Option.value jobs ~default:(Lf_simd.Pool.default_jobs ())
        | _ -> 1
      in
      let metrics = vm.Lf_simd.Vm.metrics in
      Fmt.pr "SIMD run on %d lanes: %a@." lanes Lf_simd.Metrics.pp metrics;
      Option.iter
        (fun (mol, pl) ->
          match Lf_simd.Vm.read_global vm "f" with
          | Values.AReal f ->
              let err = max_abs_err (Src.reference mol pl) (Nd.to_array f) in
              Fmt.pr "nbforce forces vs reference: max abs error %.3g@." err;
              if err > 1e-9 then begin
                Fmt.epr "simdsim: nbforce forces disagree with reference@.";
                raise Exit
              end
          | _ -> Errors.runtime_error "f is not a REAL array")
        workload;
      if profile then begin
        let p = Option.get prof in
        Fmt.pr "@.per-line divergence profile (worst first):@.";
        Obs.profile_table ~source:src Fmt.stdout p;
        Option.iter
          (fun o ->
            Fmt.pr "@.";
            Obs.heatmap Fmt.stdout o)
          occ
      end;
      (match prof with
      | Some p ->
          if not (Obs.check_totals p metrics) then begin
            Fmt.epr
              "simdsim: profile totals do not reproduce the aggregate \
               metrics@.";
            raise Exit
          end
          else if profile then
            Fmt.pr "profile totals tie out with aggregate metrics@."
      | None -> ());
      if compare_mimd then begin
        let w = Option.get workload in
        let mol, pl = w in
        let mimd, f_mimd = Obs.run_nbforce_mimd w ~p:lanes in
        let err = max_abs_err (Src.reference mol pl) f_mimd in
        Fmt.pr "@.MIMD run on %d processors (block decomposition): %d steps \
                (max over processors)@."
          lanes mimd.Lf_mimd.Mimd_vm.time;
        Fmt.pr "MIMD forces vs reference: max abs error %.3g@." err;
        if err > 1e-9 then begin
          Fmt.epr "simdsim: MIMD forces disagree with reference@.";
          raise Exit
        end;
        Fmt.pr "@.per-line MIMD step attribution (original Figure 13 \
                source):@.";
        Obs.mimd_line_table ~source:Src.source Fmt.stdout
          mimd.Lf_mimd.Mimd_vm.line_steps;
        Fmt.pr "@.TIME_SIMD vs TIME_MIMD per source region:@.";
        Obs.region_table Fmt.stdout ~simd_src:src ~prof:(Option.get prof)
          ~metrics ~mimd
      end;
      if stats then Fmt.pr "@.%a" Lf_obs.Stats.pp ();
      Option.iter (fun f -> write_json f (Lf_obs.Stats.to_json ())) stats_json;
      Option.iter
        (fun f ->
          Lf_obs.Manifest.write f
            (Lf_obs.Manifest.make ~program:path ~source:src
               ~engine:engine_name ~opt:opt_used ~jobs:jobs_used ~p:lanes
               ~wall_ns ~cpu_s
               ~metrics:
                 (Lf_simd.Metrics.to_json ~engine:engine_name ~opt:opt_used
                    ~jobs:jobs_used metrics)
               ~stats:(Lf_obs.Stats.to_json ())))
        manifest;
      Option.iter
        (fun path ->
          write_json path
            (Lf_simd.Metrics.to_json ~engine:engine_name ~opt:opt_used
               ~jobs:jobs_used metrics))
        metrics_json;
      Option.iter
        (fun path ->
          write_json path (Lf_obs.Occupancy.to_json (Option.get occ)))
        occupancy_json;
      Option.iter
        (fun path -> Lf_obs.Chrome.write_file (Option.get chrome) path)
        chrome_file;
      List.iter
        (fun name ->
          match Lf_simd.Vm.find vm name with
          | Lf_simd.Vm.VScalar r -> Fmt.pr "%s = %a@." name Values.pp !r
          | Lf_simd.Vm.VPlural vs ->
              Fmt.pr "%s = %a@." name Lf_simd.Pval.pp (Lf_simd.Pval.Plural vs)
          | Lf_simd.Vm.VGlobal a | Lf_simd.Vm.VPluralArr a ->
              Fmt.pr "%s = %a@." name Values.pp (Values.VArr a))
        dumps;
      0
    end
  with
  | Exit -> 1
  | Lf_simd.Batch.Bad_value msg ->
      (* malformed --set/--fill token: a usage error, same exit code as
         cmdliner's own CLI errors *)
      Fmt.epr "simdsim: %s@." msg;
      124
  | Lf_simd.Verify.Error diags ->
      List.iter
        (fun d ->
          Fmt.epr "%a" (Lf_analysis.Lint.pp_diag ~file:path ()) d)
        diags;
      Fmt.epr "simdsim: IR verification failed@.";
      1
  | ( Errors.Lex_error _ | Errors.Parse_error _ | Errors.Type_error _
    | Errors.Runtime_error _ | Errors.Runtime_error_at _ ) as e ->
      Fmt.epr "simdsim: %s@." (Errors.to_message e);
      1

let cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Program to run ('-' for stdin).")
  in
  let seq =
    Arg.(
      value & flag
      & info [ "seq" ] ~doc:"Run on the sequential interpreter instead.")
  in
  let engine =
    let engine_conv =
      Arg.enum
        [
          ("tree-walk", `Tree_walk);
          ("compiled", `Compiled);
          ("parallel", `Parallel);
        ]
    in
    Arg.(
      value
      & opt engine_conv `Tree_walk
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "SIMD execution engine: $(b,tree-walk) (the reference \
             interpreter), $(b,compiled) (slot-resolved closures; same \
             results, faster) or $(b,parallel) (the compiled engine with \
             lanes sharded over a Domain pool; see $(b,--jobs)).  All \
             three produce bit-identical state, metrics, traces and \
             errors.")
  in
  let jobs =
    let jobs_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | Some n ->
            Error (`Msg (Fmt.str "invalid jobs count %d: must be >= 1" n))
        | None -> Error (`Msg (Fmt.str "invalid jobs count %S" s))
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(
      value
      & opt (some jobs_conv) None
      & info [ "jobs" ] ~docv:"N"
          ~doc:
            "Shard count for $(b,--engine parallel): the lanes are split \
             into at most $(docv) contiguous shards (chunk-aligned, so \
             results do not depend on $(docv)).  Requires $(b,--engine \
             parallel); defaults to the machine's recommended domain \
             count.")
  in
  let lanes =
    Arg.(value & opt int 4 & info [ "lanes" ] ~doc:"SIMD lane count (P).")
  in
  let olevel =
    let olevel_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 0 && n <= 2 -> Ok n
        | Some n ->
            Error
              (`Msg
                (Fmt.str "invalid optimizer level %d: expected 0, 1 or 2" n))
        | None -> Error (`Msg (Fmt.str "invalid optimizer level %S" s))
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(
      value
      & opt olevel_conv 1
      & info [ "O"; "opt-level" ] ~docv:"LEVEL"
          ~doc:
            "Compiled-engine optimizer level: $(b,0) runs the unoptimized \
             per-operator closures, $(b,1) (the default) enables fusion, \
             fused reductions, scratch-slot reuse and the peephole passes, \
             $(b,2) adds value-range analysis (bounds-check discharge on \
             gathers and scatters, and lane-disjointness proofs that let \
             the parallel engine shard global-array scatters).  All levels \
             are bit-identical on state, metrics, traces and errors; only \
             the wall-clock changes.  Ignored by $(b,tree-walk) and \
             $(b,--seq).")
  in
  let dump_ir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-ir" ] ~docv:"FILE"
          ~doc:
            "Write the compiled engine's annotated IR (after the $(b,-O) \
             pipeline) as JSON to $(docv) ('-' for stdout) before running.  \
             Requires a SIMD engine (conflicts with $(b,--seq)).")
  in
  let dump_ir_phase =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-ir-phase" ] ~docv:"DIR"
          ~doc:
            "Write the annotated IR after $(i,every) optimizer phase as \
             one JSON file per phase ($(i,NN-name.json), in pipeline \
             order) into $(docv), creating it if needed.  Phases the \
             $(b,-O) level does not run are omitted.  Requires a SIMD \
             engine (conflicts with $(b,--seq)).")
  in
  let verify_ir =
    Arg.(
      value & flag
      & info [ "verify-ir" ]
          ~doc:
            "Run the typed IR verifier after lowering and after every \
             optimizer phase (slot typing, def-before-use, scratch \
             interference, mask shapes, and every $(b,-O2) range and \
             disjointness claim re-proved from scratch); print \
             rule-coded diagnostics and exit 1 on a broken invariant.  \
             Requires a SIMD engine (conflicts with $(b,--seq)).")
  in
  let sets =
    Arg.(
      value
      & opt_all string []
      & info [ "set" ] ~docv:"NAME=VALUE" ~doc:"Seed a scalar variable.")
  in
  let fills =
    Arg.(
      value
      & opt_all string []
      & info [ "fill" ] ~docv:"NAME=V0,V1,..."
          ~doc:"Seed a one-dimensional array.")
  in
  let dumps =
    Arg.(
      value
      & opt_all string []
      & info [ "dump" ] ~docv:"NAME" ~doc:"Print a variable after the run.")
  in
  let kernel =
    let kernel_conv = Arg.enum [ ("nbforce", `Nbforce) ] in
    Arg.(
      value
      & opt (some kernel_conv) None
      & info [ "kernel" ] ~docv:"KERNEL"
          ~doc:
            "Bind a built-in workload before the run.  $(b,nbforce) binds \
             the MD pairlist, the force/onef routines and the n/maxp \
             parameters, so the original or flattened NBFORCE kernel runs \
             as-is; forces are checked against the sequential reference.")
  in
  let atoms =
    Arg.(
      value & opt int 96
      & info [ "atoms" ] ~docv:"N"
          ~doc:"Number of atoms for --kernel nbforce.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Stream one JSON line per vector step (source line, step \
             ordinal, active lanes, kind) to $(docv) ('-' for stdout).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print the per-line divergence profile and the lane-occupancy \
             heatmap, and check that the profile totals reproduce the \
             aggregate metrics exactly.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the aggregate execution metrics as JSON to $(docv).")
  in
  let occupancy_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "occupancy-json" ] ~docv:"FILE"
          ~doc:"Write the lane-occupancy timeline as JSON to $(docv).")
  in
  let chrome_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file (one track per lane; opens \
             in Perfetto / chrome://tracing) to $(docv).")
  in
  let compare_mimd =
    Arg.(
      value & flag
      & info [ "compare-mimd" ]
          ~doc:
            "With --kernel nbforce: also run the original Figure 13 \
             kernel on the asynchronous MIMD model (block decomposition, \
             one name space per processor) and report TIME_SIMD vs \
             TIME_MIMD per source region.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the flatten-safety lint before executing and refuse \
             (exit 1) on lint errors.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Enable the engine telemetry registry for the run and print \
             it afterwards: per-opcode dispatch counts, mask-density \
             buckets, optimizer and pool-health counters, GC deltas and \
             the run timer, grouped by determinism class.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Enable the telemetry registry and write its dump as JSON to \
             $(docv).  The $(b,counters) section is byte-identical across \
             engines, $(b,--jobs) and $(b,-O) levels; $(b,opt) varies \
             only with $(b,-O); $(b,volatile) (GC, pool health, timers) \
             is exempt from any determinism guarantee.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            "Write a run manifest to $(docv): program path, MD5 and size, \
             engine, $(b,-O) level, jobs, lanes, wall/CPU time, the \
             execution metrics and the full telemetry dump — one \
             self-contained JSON record tying a result to the exact \
             configuration that produced it.")
  in
  let warm =
    let warm_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok n
        | Some n -> Error (`Msg (Fmt.str "invalid warm count %d: must be >= 0" n))
        | None -> Error (`Msg (Fmt.str "invalid warm count %S" s))
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(
      value
      & opt warm_conv 0
      & info [ "warm" ] ~docv:"N"
          ~doc:
            "Run the program $(docv)+1 times through a compiled-program \
             cache: one cold run (parse, lower, optimize, remember the \
             IR) and $(docv) warm runs that skip the front end and go \
             straight to emission.  All outputs (metrics, dumps, traces, \
             profile) come from the last — warm — run; warm runs are \
             bit-identical to cold ones on every engine and $(b,-O) \
             level.  With $(b,--stats), the cache.hits / cache.misses \
             counters account the cache traffic.  Requires a SIMD \
             engine (conflicts with $(b,--seq)).")
  in
  Cmd.v
    (Cmd.info "simdsim" ~version:"1.0"
       ~doc:"run pseudo-Fortran programs on the simulated SIMD machine")
    Term.(
      const run $ path $ seq $ engine $ jobs $ lanes $ olevel $ dump_ir
      $ dump_ir_phase $ verify_ir $ sets $ fills $ dumps $ kernel $ atoms
      $ trace_file $ profile $ metrics_json $ occupancy_json $ chrome_file
      $ compare_mimd $ lint $ stats $ stats_json $ manifest $ warm)

let () = exit (Cmd.eval' cmd)
