(* flattenlint: static flatten-safety checking with located diagnostics.

   Lints pseudo-Fortran programs against the paper's flattening
   preconditions (applicability, §6 safety of the receiving loop, §4
   phase purity) and the plural-race rules for FORALL/WHERE, using the
   dataflow framework in lib/analysis.  Prints human-readable located
   diagnostics by default, or a machine-readable JSON report with --json.

   Exit status: 0 when every input is lint-clean (no errors; warnings are
   allowed), 1 when any input has lint errors, 2 when an input fails to
   parse.

   Examples:
     dune exec bin/flattenlint.exe -- examples/fortran/example.f
     dune exec bin/flattenlint.exe -- --json --kernel nbforce
     dune exec bin/flattenlint.exe -- --explain LF004 *)

open Cmdliner
module Lint = Lf_analysis.Lint
module Json = Lf_obs.Json

let read_source path =
  let ic = if path = "-" then stdin else open_in path in
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    let k = input ic chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      loop ()
    end
  in
  loop ();
  if path <> "-" then close_in ic;
  Buffer.contents buf

(* One input to lint: a file path or a built-in kernel source. *)
type input = {
  i_name : string;
  i_source : string;
}

let diag_json (d : Lint.diag) : Json.t =
  Json.Obj
    ([
       ("rule", Json.Str d.Lint.d_rule);
       ("severity", Json.Str (Lint.severity_to_string d.Lint.d_severity));
     ]
    @ (match d.Lint.d_loc with
      | Some p ->
          [
            ("line", Json.Int p.Lf_lang.Errors.line);
            ("col", Json.Int p.Lf_lang.Errors.col);
          ]
      | None -> [])
    @ [ ("message", Json.Str d.Lint.d_msg) ])

let report_json name (r : Lint.report) : Json.t =
  Json.Obj
    [
      ("file", Json.Str name);
      ("applicable", Json.Bool r.Lint.applicable);
      ("safe", Json.Bool r.Lint.safe);
      ("errors", Json.Int (List.length (Lint.errors r)));
      ("diagnostics", Json.List (List.map diag_json r.Lint.diags));
    ]

let parse_failure_json name msg : Json.t =
  Json.Obj
    [
      ("file", Json.Str name);
      ("safe", Json.Bool false);
      ("parse_error", Json.Str msg);
    ]

let run files kernel json pure_subs impure_funcs explain rules quiet =
  if rules then begin
    Fmt.pr "Flatten-safety rules (LF, program-level):@.";
    List.iter (fun (r, doc) -> Fmt.pr "  %s  %s@." r doc) Lint.rules;
    Fmt.pr "@.IR-verifier rules (IR, optimizer-level; see simdsim \
            --verify-ir):@.";
    List.iter
      (fun (r, doc) -> Fmt.pr "  %s  %s@." r doc)
      Lf_simd.Verify.rules;
    0
  end
  else
  match explain with
  | Some rule ->
      let doc =
        match Lf_simd.Verify.rule_doc rule with
        | Some doc -> doc
        | None -> Lint.rule_doc rule
      in
      Fmt.pr "%s: %s@." rule doc;
      0
  | None -> (
      let inputs =
        List.map (fun f -> { i_name = f; i_source = read_source f }) files
        @
        match kernel with
        | Some `Nbforce ->
            [
              {
                i_name = "<kernel:nbforce>";
                i_source = Lf_kernels.Nbforce_src.source;
              };
            ]
        | None -> []
      in
      if inputs = [] then begin
        Fmt.epr "flattenlint: no input (give FILE arguments or --kernel)@.";
        2
      end
      else
        let lint input =
          match Lf_lang.Parser.program_of_string input.i_source with
          | exception e -> Error (Lf_lang.Errors.to_message e)
          | prog ->
              Ok
                (Lint.check_program ~pure_subroutines:pure_subs
                   ~impure_funcs prog)
        in
        let results = List.map (fun i -> (i, lint i)) inputs in
        let parse_failed =
          List.exists (fun (_, r) -> Result.is_error r) results
        in
        let lint_failed =
          List.exists
            (fun (_, r) ->
              match r with Ok rep -> not rep.Lint.safe | Error _ -> false)
            results
        in
        if json then begin
          let reports =
            List.map
              (fun (i, r) ->
                match r with
                | Ok rep -> report_json i.i_name rep
                | Error msg -> parse_failure_json i.i_name msg)
              results
          in
          Fmt.pr "%s@."
            (Json.to_string
               (Json.Obj
                  [
                    ("ok", Json.Bool (not (parse_failed || lint_failed)));
                    ("reports", Json.List reports);
                  ]))
        end
        else
          List.iter
            (fun (i, r) ->
              match r with
              | Error msg -> Fmt.epr "%s: %s@." i.i_name msg
              | Ok rep ->
                  List.iter
                    (fun d ->
                      Fmt.pr "%a"
                        (Lint.pp_diag_with_context ~file:i.i_name
                           ~source:i.i_source ())
                        d)
                    rep.Lint.diags;
                  if not quiet then
                    Fmt.pr "%s: %s%s@." i.i_name
                      (if rep.Lint.safe then "safe to flatten"
                       else "NOT safe to flatten")
                      (if rep.Lint.applicable then ""
                       else " (flattening not applicable)"))
            results;
        if parse_failed then 2 else if lint_failed then 1 else 0)

let cmd =
  let files =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"FILE" ~doc:"Programs to lint ('-' for stdin).")
  in
  let kernel =
    let kernel_conv = Arg.enum [ ("nbforce", `Nbforce) ] in
    Arg.(
      value
      & opt (some kernel_conv) None
      & info [ "kernel" ] ~docv:"KERNEL"
          ~doc:
            "Also lint a built-in kernel source: $(b,nbforce) is the \
             paper's Figure 13 NBFORCE nest.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit a machine-readable JSON report instead of text.")
  in
  let pure_subs =
    Arg.(
      value
      & opt (list string) []
      & info [ "pure-subroutines" ]
          ~doc:"Subroutines certified free of cross-iteration effects.")
  in
  let impure_funcs =
    Arg.(
      value
      & opt (list string) []
      & info [ "impure-funcs" ]
          ~doc:"Functions known to have side effects.")
  in
  let explain =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"RULE"
          ~doc:
            "Print the one-line description of a rule id (LF or IR \
             family) and exit.")
  in
  let rules =
    Arg.(
      value & flag
      & info [ "rules" ]
          ~doc:
            "List every rule id with its one-line description — the LF \
             flatten-safety family and the IR verifier family — and \
             exit.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress the per-file summary line.")
  in
  Cmd.v
    (Cmd.info "flattenlint" ~version:"1.0"
       ~doc:"static safety checking for loop flattening")
    Term.(
      const run $ files $ kernel $ json $ pure_subs $ impure_funcs $ explain
      $ rules $ quiet)

let () = exit (Cmd.eval' cmd)
