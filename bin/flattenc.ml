(* flattenc: the source-to-source loop-flattening compiler.

   Reads a pseudo-Fortran program, applies the paper's transformation
   pipeline, and prints the transformed program (or an explanation of why
   the transformation was refused).

   Examples:
     dune exec bin/flattenc.exe -- program.f
     dune exec bin/flattenc.exe -- --target simd --decomp cyclic --p 64 program.f
     dune exec bin/flattenc.exe -- --naive --target simd program.f
     echo '...' | dune exec bin/flattenc.exe -- - *)

open Cmdliner

let read_source path =
  let ic = if path = "-" then stdin else open_in path in
  let buf = Buffer.create 65536 in
  let chunk = Bytes.create 65536 in
  let rec loop () =
    let k = input ic chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      loop ()
    end
  in
  loop ();
  if path <> "-" then close_in ic;
  Buffer.contents buf

let variant_conv =
  Arg.enum
    [
      ("auto", None);
      ("general", Some Lf_core.Flatten.General);
      ("optimized", Some Lf_core.Flatten.Optimized);
      ("done-test", Some Lf_core.Flatten.DoneTest);
    ]

let decomp_conv =
  Arg.enum
    [ ("block", Lf_core.Simdize.Block); ("cyclic", Lf_core.Simdize.Cyclic) ]

(* With --lint: report located diagnostics and refuse on errors. *)
let lint_refuses ~path ~src ~pure_subs prog =
  let report =
    Lf_analysis.Lint.check_program ~pure_subroutines:pure_subs prog
  in
  List.iter
    (fun d ->
      Fmt.epr "%a"
        (Lf_analysis.Lint.pp_diag_with_context ~file:path ~source:src ())
        d)
    report.Lf_analysis.Lint.diags;
  not report.Lf_analysis.Lint.safe

let run path variant target decomp p olevel dump_ir naive assume_nonempty
    trusted pure_subs deep check lint verbose =
  if Option.is_some dump_ir && target <> "simd" then begin
    Fmt.epr "flattenc: --dump-ir requires --target simd@.";
    1
  end
  else
  let src = read_source path in
  match Lf_lang.Parser.program_of_string src with
  | exception e ->
      Fmt.epr "%s@." (Lf_lang.Errors.to_message e);
      1
  | prog when lint && lint_refuses ~path ~src ~pure_subs prog ->
      Fmt.epr "flattenc: refusing to transform %s: lint errors@." path;
      1
  | prog -> (
      if target = "mimd" then begin
        let fresh = Lf_core.Fresh.of_program prog in
        match
          Lf_core.Mimdize.mimdize ~fresh ~p:(Lf_lang.Ast.EInt p) prog
        with
        | Ok r ->
            if verbose then
              Fmt.epr "distributed: %s@."
                (String.concat ", " r.Lf_core.Mimdize.distributed);
            print_string
              (Lf_lang.Pretty.program_to_string r.Lf_core.Mimdize.program);
            0
        | Error e ->
            Fmt.epr "flattenc: %s@." e;
            1
      end
      else
      let target =
        if target = "simd" then
          Lf_core.Pipeline.Simd
            { decomp; p = Lf_lang.Ast.EInt p }
        else Lf_core.Pipeline.Sequential
      in
      let opts =
        {
          Lf_core.Pipeline.variant;
          assume_inner_nonempty = assume_nonempty;
          trusted_parallel = trusted;
          pure_subroutines = pure_subs;
          impure_funcs = [];
          deep;
          target;
        }
      in
      let result =
        if naive then Lf_core.Pipeline.simdize_program_naive ~opts prog
        else Lf_core.Pipeline.flatten_program ~opts prog
      in
      match result with
      | Error e ->
          Fmt.epr "flattenc: %s@." e;
          1
      | Ok o ->
          if check then begin
            let report =
              Lf_lang.Typecheck.check_program o.Lf_core.Pipeline.program
            in
            List.iter
              (fun d -> Fmt.epr "%a@." Lf_lang.Typecheck.pp_diagnostic d)
              (report.Lf_lang.Typecheck.errors
              @ report.Lf_lang.Typecheck.warnings)
          end;
          if verbose then begin
            Fmt.epr "variant:    %s@."
              (Lf_core.Flatten.variant_to_string
                 o.Lf_core.Pipeline.variant_used);
            Fmt.epr "profitable: %b@." o.Lf_core.Pipeline.profitable;
            Fmt.epr "safe:       %b@."
              o.Lf_core.Pipeline.safety.Lf_analysis.Parallel.parallel;
            if o.Lf_core.Pipeline.plural_vars <> [] then
              Fmt.epr "plural:     %s@."
                (String.concat ", " o.Lf_core.Pipeline.plural_vars);
            List.iter (Fmt.epr "note:       %s@.") o.Lf_core.Pipeline.notes
          end;
          Option.iter
            (fun f ->
              let json =
                Lf_simd.Vm.dump_ir ~opt:olevel ~p
                  o.Lf_core.Pipeline.program
              in
              let s = Lf_obs.Json.to_string json in
              if f = "-" then Fmt.pr "%s@." s
              else begin
                let oc = open_out f in
                output_string oc s;
                output_char oc '\n';
                close_out oc
              end)
            dump_ir;
          print_string
            (Lf_lang.Pretty.program_to_string o.Lf_core.Pipeline.program);
          0)

let cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Input program ('-' for stdin).")
  in
  let variant =
    Arg.(
      value
      & opt variant_conv None
      & info [ "variant" ]
          ~doc:"Flattening variant: auto, general, optimized, done-test.")
  in
  let target =
    Arg.(
      value
      & opt (enum [ ("seq", "seq"); ("simd", "simd"); ("mimd", "mimd") ])
          "seq"
      & info [ "target" ] ~doc:"Compilation target: seq, simd or mimd.")
  in
  let decomp =
    Arg.(
      value
      & opt decomp_conv Lf_core.Simdize.Cyclic
      & info [ "decomp" ] ~doc:"SIMD data decomposition: block or cyclic.")
  in
  let p =
    Arg.(
      value & opt int 64
      & info [ "p"; "nproc" ] ~doc:"Processor count for the SIMD target.")
  in
  let olevel =
    let olevel_conv =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 0 && n <= 2 -> Ok n
        | Some n ->
            Error
              (`Msg
                (Fmt.str "invalid optimizer level %d: expected 0, 1 or 2" n))
        | None -> Error (`Msg (Fmt.str "invalid optimizer level %S" s))
      in
      Arg.conv (parse, Fmt.int)
    in
    Arg.(
      value
      & opt olevel_conv 1
      & info [ "O"; "opt-level" ] ~docv:"LEVEL"
          ~doc:
            "Optimizer level for $(b,--dump-ir): $(b,0) dumps the \
             unannotated slot-resolved IR, $(b,1) (the default) the IR \
             after fusion, reduction fusion, scratch planning and the \
             peephole passes, $(b,2) additionally the range and \
             parallel-scatter annotations.  Has no effect on the printed \
             program.")
  in
  let dump_ir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-ir" ] ~docv:"FILE"
          ~doc:
            "Also write the SIMD VM's annotated IR for the transformed \
             program as JSON to $(docv) ('-' for stdout).  Requires \
             $(b,--target simd).")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:"Emit the naive (unflattened) SIMD version instead.")
  in
  let assume_nonempty =
    Arg.(
      value & flag
      & info [ "assume-inner-nonempty" ]
          ~doc:
            "Assert that every inner loop runs at least once (enables the \
             Fig. 11/12 variants).")
  in
  let trusted =
    Arg.(
      value & flag
      & info [ "trust-parallel" ]
          ~doc:"Assert outer-loop independence without analysis.")
  in
  let pure_subs =
    Arg.(
      value
      & opt (list string) []
      & info [ "pure-subroutines" ]
          ~doc:"Subroutines certified free of cross-iteration effects.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:"Flatten loop towers deeper than two levels.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Typecheck the transformed program and report diagnostics.")
  in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:
            "Run the flatten-safety lint before transforming and refuse \
             (exit 1) on lint errors.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print diagnostics.")
  in
  Cmd.v
    (Cmd.info "flattenc" ~version:"1.0"
       ~doc:"source-to-source loop flattening for SIMD machines")
    Term.(
      const run $ path $ variant $ target $ decomp $ p $ olevel $ dump_ir
      $ naive $ assume_nonempty $ trusted $ pure_subs $ deep $ check $ lint
      $ verbose)

let () = exit (Cmd.eval' cmd)
